(* Recursive-descent parser for the GOM definition language (schema and type
   definition frames, fashion clauses) and the schema evolution command
   language.  The concrete syntax follows the paper's examples; see the
   README for the full grammar. *)

exception Error of string * int * int  (* message, line, column *)

type state = { toks : Token.located array; mutable pos : int }

let make toks = { toks = Array.of_list toks; pos = 0 }

let cur st = st.toks.(st.pos)
let tok st = (cur st).Token.tok

let fail st msg =
  let t = cur st in
  raise (Error (Printf.sprintf "%s, found %s" msg (Token.describe t.Token.tok),
                t.Token.line, t.Token.col))

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let eat st t =
  if tok st = t then advance st
  else fail st (Printf.sprintf "expected %s" (Token.describe t))

let eat_kw st k = eat st (Token.KW k)

let accept st t =
  if tok st = t then begin
    advance st;
    true
  end
  else false

let accept_kw st k = accept st (Token.KW k)

let ident st =
  match tok st with
  | Token.IDENT s ->
      advance st;
      s
  | Token.KW ("value" as s) ->
      (* "value" is a keyword only inside fashion write accessors; allow it
         as an ordinary identifier elsewhere. *)
      advance st;
      s
  | _ -> fail st "expected identifier"

(* A type reference: Name or Name@Schema. *)
let type_ref st =
  let name = ident st in
  if accept st Token.AT then
    let schema = ident st in
    Ast.at name schema
  else Ast.local name

let ident_list st =
  let rec go acc =
    let x = ident st in
    if accept st Token.COMMA then go (x :: acc) else List.rev (x :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Expressions                                                          *)
(* ------------------------------------------------------------------ *)

let rec expr st = expr_or st

and expr_or st =
  let lhs = expr_and st in
  if accept_kw st "or" then Ast.Binop (Ast.Or, lhs, expr_or st) else lhs

and expr_and st =
  let lhs = expr_cmp st in
  if accept_kw st "and" then Ast.Binop (Ast.And, lhs, expr_and st) else lhs

and expr_cmp st =
  let lhs = expr_add st in
  let op =
    match tok st with
    | Token.EQEQ -> Some Ast.Eq
    | Token.NEQ -> Some Ast.Ne
    | Token.LT -> Some Ast.Lt
    | Token.LE -> Some Ast.Le
    | Token.GT -> Some Ast.Gt
    | Token.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      advance st;
      Ast.Binop (op, lhs, expr_add st)

and expr_add st =
  let rec go lhs =
    match tok st with
    | Token.PLUS ->
        advance st;
        go (Ast.Binop (Ast.Add, lhs, expr_mul st))
    | Token.MINUS ->
        advance st;
        go (Ast.Binop (Ast.Sub, lhs, expr_mul st))
    | _ -> lhs
  in
  go (expr_mul st)

and expr_mul st =
  let rec go lhs =
    match tok st with
    | Token.STAR ->
        advance st;
        go (Ast.Binop (Ast.Mul, lhs, expr_unary st))
    | Token.SLASH ->
        advance st;
        go (Ast.Binop (Ast.Div, lhs, expr_unary st))
    | _ -> lhs
  in
  go (expr_unary st)

and expr_unary st =
  match tok st with
  | Token.MINUS ->
      advance st;
      Ast.Neg (expr_unary st)
  | Token.KW "not" ->
      advance st;
      Ast.Not (expr_unary st)
  | _ -> expr_postfix st

and expr_postfix st =
  let rec go e =
    if accept st Token.DOT then begin
      let name = ident st in
      if accept st Token.LPAREN then begin
        let args = call_args st in
        go (Ast.Call (e, name, args))
      end
      else go (Ast.Attr_access (e, name))
    end
    else e
  in
  go (expr_primary st)

and call_args st =
  if accept st Token.RPAREN then []
  else
    let rec go acc =
      let e = expr st in
      if accept st Token.COMMA then go (e :: acc)
      else begin
        eat st Token.RPAREN;
        List.rev (e :: acc)
      end
    in
    go []

and expr_primary st =
  match tok st with
  | Token.INT i ->
      advance st;
      Ast.Int_lit i
  | Token.FLOAT f ->
      advance st;
      Ast.Float_lit f
  | Token.STRING s ->
      advance st;
      Ast.String_lit s
  | Token.KW "true" ->
      advance st;
      Ast.Bool_lit true
  | Token.KW "false" ->
      advance st;
      Ast.Bool_lit false
  | Token.KW "self" ->
      advance st;
      Ast.Self
  | Token.KW "value" ->
      advance st;
      Ast.Var "value"
  | Token.KW "new" ->
      advance st;
      Ast.New (type_ref st)
  | Token.LPAREN ->
      advance st;
      let e = expr st in
      eat st Token.RPAREN;
      e
  | Token.IDENT x ->
      advance st;
      Ast.Var x
  | _ -> fail st "expected expression"

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

let rec stmt st =
  match tok st with
  | Token.KW "begin" ->
      advance st;
      let rec go acc =
        if tok st = Token.KW "end" then begin
          advance st;
          Ast.Block (List.rev acc)
        end
        else go (stmt st :: acc)
      in
      go []
  | Token.KW "if" ->
      advance st;
      eat st Token.LPAREN;
      let c = expr st in
      eat st Token.RPAREN;
      let then_ = stmt st in
      if accept_kw st "else" then Ast.If (c, then_, Some (stmt st))
      else Ast.If (c, then_, None)
  | Token.KW "while" ->
      advance st;
      eat st Token.LPAREN;
      let c = expr st in
      eat st Token.RPAREN;
      Ast.While (c, stmt st)
  | Token.KW "return" ->
      advance st;
      if accept st Token.SEMI then Ast.Return None
      else begin
        let e = expr st in
        eat st Token.SEMI;
        Ast.Return (Some e)
      end
  | Token.KW "var" ->
      advance st;
      let name = ident st in
      eat st Token.COLON;
      let ty = type_ref st in
      let init = if accept st Token.ASSIGN then Some (expr st) else None in
      eat st Token.SEMI;
      Ast.Local (name, ty, init)
  | _ ->
      let e = expr st in
      if accept st Token.ASSIGN then begin
        let rhs = expr st in
        eat st Token.SEMI;
        match e with
        | Ast.Var x -> Ast.Assign (Ast.Lvar x, rhs)
        | Ast.Attr_access (obj, a) -> Ast.Assign (Ast.Lattr (obj, a), rhs)
        | _ -> fail st "left-hand side of := must be a variable or attribute"
      end
      else begin
        eat st Token.SEMI;
        Ast.Expr e
      end

(* ------------------------------------------------------------------ *)
(* Type definition frames                                               *)
(* ------------------------------------------------------------------ *)

(* [declare] name : (T1, T2) -> T ;   — the "(...)" may be omitted for a
   single argument, and "name : -> T" declares a nullary operation. *)
let op_sig st =
  ignore (accept_kw st "declare");
  let name = ident st in
  eat st Token.COLON;
  let args =
    if tok st = Token.ARROW then []
    else if accept st Token.LPAREN then begin
      if accept st Token.RPAREN then []
      else
        let rec go acc =
          let t = type_ref st in
          if accept st Token.COMMA then go (t :: acc)
          else begin
            eat st Token.RPAREN;
            List.rev (t :: acc)
          end
        in
        go []
    end
    else
      let rec go acc =
        let t = type_ref st in
        if accept st Token.COMMA then go (t :: acc) else List.rev (t :: acc)
      in
      go []
  in
  eat st Token.ARROW;
  let result = type_ref st in
  ignore (accept st Token.SEMI);
  { Ast.op_name = name; op_args = args; op_result = result }

(* [define] name [(params)] is <stmt> [name-echo] [;] *)
let op_impl st =
  ignore (accept_kw st "define");
  let name = ident st in
  let params =
    if accept st Token.LPAREN then begin
      if accept st Token.RPAREN then []
      else
        let rec go acc =
          let p = ident st in
          if accept st Token.COMMA then go (p :: acc)
          else begin
            eat st Token.RPAREN;
            List.rev (p :: acc)
          end
        in
        go []
    end
    else []
  in
  eat_kw st "is";
  let body = stmt st in
  (* accept the paper's trailing "end <name>;" echo and variants *)
  ignore (accept_kw st "define");
  (match tok st with
  | Token.IDENT n when n = name -> advance st
  | _ -> ());
  ignore (accept st Token.SEMI);
  { Ast.impl_name = name; impl_params = params; impl_body = body }

let attr_block st =
  eat st Token.LBRACKET;
  let rec go acc =
    if accept st Token.RBRACKET then List.rev acc
    else begin
      let name = ident st in
      eat st Token.COLON;
      let ty = type_ref st in
      ignore (accept st Token.SEMI);
      go ((name, ty) :: acc)
    end
  in
  go []

let type_def st =
  eat_kw st "type";
  let name = ident st in
  let supers =
    if accept_kw st "supertype" then
      let rec go acc =
        let t = type_ref st in
        if accept st Token.COMMA then go (t :: acc) else List.rev (t :: acc)
      in
      go []
    else []
  in
  eat_kw st "is";
  let attrs = if tok st = Token.LBRACKET then attr_block st else [] in
  let operations =
    if accept_kw st "operations" then
      let rec go acc =
        match tok st with
        | Token.IDENT _ | Token.KW "declare" -> go (op_sig st :: acc)
        | _ -> List.rev acc
      in
      go []
    else []
  in
  let refines =
    if accept_kw st "refine" then
      let rec go acc =
        match tok st with
        | Token.IDENT _ | Token.KW "declare" -> go (op_sig st :: acc)
        | _ -> List.rev acc
      in
      go []
    else []
  in
  let impls =
    if accept_kw st "implementation" then
      let rec go acc =
        match tok st with
        | Token.IDENT _ | Token.KW "define" -> go (op_impl st :: acc)
        | _ -> List.rev acc
      in
      go []
    else []
  in
  eat_kw st "end";
  eat_kw st "type";
  let _ = ident st in
  eat st Token.SEMI;
  {
    Ast.td_name = name;
    td_supertypes = supers;
    td_attrs = attrs;
    td_operations = operations;
    td_refines = refines;
    td_implementation = impls;
  }

let sort_def st =
  eat_kw st "sort";
  let name = ident st in
  eat_kw st "is";
  eat_kw st "enum";
  eat st Token.LPAREN;
  let values = ident_list st in
  eat st Token.RPAREN;
  eat st Token.SEMI;
  { Ast.sd_name = name; sd_values = values }

(* ------------------------------------------------------------------ *)
(* Schema definition frames (appendix A)                                *)
(* ------------------------------------------------------------------ *)

let rename_kind st =
  if accept_kw st "type" then Ast.Ktype
  else if accept_kw st "var" then Ast.Kvar
  else if accept_kw st "operation" then Ast.Kop
  else if accept_kw st "schema" then Ast.Kschema
  else fail st "expected component kind (type, var, operation, schema)"

let renames st =
  (* with <kind> <old> as <new>; ... end (subschema <name> | import | schema <name>) *)
  let rec go acc =
    if accept_kw st "end" then begin
      (if accept_kw st "subschema" || accept_kw st "import" || accept_kw st "schema"
       then
         match tok st with
         | Token.IDENT _ -> ignore (ident st)
         | _ -> ());
      List.rev acc
    end
    else begin
      let kind = rename_kind st in
      let old_name = ident st in
      eat_kw st "as";
      let new_name = ident st in
      ignore (accept st Token.SEMI);
      go ({ Ast.rn_kind = kind; rn_old = old_name; rn_new = new_name } :: acc)
    end
  in
  go []

let subschema_clause st =
  eat_kw st "subschema";
  let name = ident st in
  let rns = if accept_kw st "with" then renames st else [] in
  ignore (accept st Token.SEMI);
  { Ast.ss_name = name; ss_renames = rns }

let schema_path st =
  if accept st Token.SLASH then begin
    let rec go acc =
      let seg = ident st in
      if accept st Token.SLASH then go (seg :: acc) else List.rev (seg :: acc)
    in
    { Ast.sp_absolute = true; sp_updots = 0; sp_segments = go [] }
  end
  else if tok st = Token.DOTDOT then begin
    let rec updots n =
      if accept st Token.DOTDOT then
        if accept st Token.SLASH then
          if tok st = Token.DOTDOT then updots (n + 1) else n + 1, true
        else n + 1, false
      else n, true
    in
    let n, more = updots 0 in
    let segs =
      if more && (match tok st with Token.IDENT _ -> true | _ -> false) then
        let rec go acc =
          let seg = ident st in
          if accept st Token.SLASH then go (seg :: acc) else List.rev (seg :: acc)
        in
        go []
      else []
    in
    { Ast.sp_absolute = false; sp_updots = n; sp_segments = segs }
  end
  else
    let rec go acc =
      let seg = ident st in
      if accept st Token.SLASH then go (seg :: acc) else List.rev (seg :: acc)
    in
    { Ast.sp_absolute = false; sp_updots = 0; sp_segments = go [] }

let import_clause st =
  eat_kw st "import";
  let path = schema_path st in
  let rns = if accept_kw st "with" then renames st else [] in
  ignore (accept st Token.SEMI);
  { Ast.im_path = path; im_renames = rns }

let component st : Ast.component option =
  match tok st with
  | Token.KW "type" -> Some (Ast.Ctype (type_def st))
  | Token.KW "sort" -> Some (Ast.Csort (sort_def st))
  | Token.KW "var" ->
      advance st;
      let name = ident st in
      eat st Token.COLON;
      let ty = type_ref st in
      eat st Token.SEMI;
      Some (Ast.Cvar (name, ty))
  | Token.KW "subschema" -> Some (Ast.Csubschema (subschema_clause st))
  | Token.KW "import" -> Some (Ast.Cimport (import_clause st))
  | _ -> None

let components st =
  let rec go acc =
    match component st with None -> List.rev acc | Some c -> go (c :: acc)
  in
  go []

let schema_def st =
  eat_kw st "schema";
  let name = ident st in
  eat_kw st "is";
  let public = if accept_kw st "public" then ident_list st else [] in
  if public <> [] then ignore (accept st Token.SEMI);
  let interface, implementation =
    if accept_kw st "interface" then begin
      let iface = components st in
      let impl = if accept_kw st "implementation" then components st else [] in
      iface, impl
    end
    else if accept_kw st "implementation" then [], components st
    else components st, []
  in
  eat_kw st "end";
  eat_kw st "schema";
  let _ = ident st in
  eat st Token.SEMI;
  {
    Ast.sch_name = name;
    sch_public = public;
    sch_interface = interface;
    sch_implementation = implementation;
  }

(* ------------------------------------------------------------------ *)
(* Fashion clauses                                                      *)
(* ------------------------------------------------------------------ *)

let fashion_entry st : Ast.fashion_entry =
  let name = ident st in
  if accept st Token.COLON then begin
    if accept st Token.ARROW then begin
      (* read accessor: name : -> T is <stmt> *)
      let ty = type_ref st in
      eat_kw st "is";
      let body = stmt st in
      ignore (accept st Token.SEMI);
      Ast.Fread (name, ty, body)
    end
    else if accept st Token.LARROW then begin
      let ty = type_ref st in
      eat_kw st "is";
      let body = stmt st in
      ignore (accept st Token.SEMI);
      Ast.Fwrite (name, ty, body)
    end
    else begin
      (* redirect: name : T is <expr> ; *)
      let ty = type_ref st in
      eat_kw st "is";
      let e = expr st in
      eat st Token.SEMI;
      Ast.Fredirect (name, ty, e)
    end
  end
  else begin
    (* operation imitation: name [(params)] is <stmt> *)
    let params =
      if accept st Token.LPAREN then begin
        if accept st Token.RPAREN then []
        else
          let rec go acc =
            let p = ident st in
            if accept st Token.COMMA then go (p :: acc)
            else begin
              eat st Token.RPAREN;
              List.rev (p :: acc)
            end
          in
          go []
      end
      else []
    in
    eat_kw st "is";
    let body = stmt st in
    ignore (accept st Token.SEMI);
    Ast.Fop (name, params, body)
  end

let fashion_def st =
  eat_kw st "fashion";
  let masked = type_ref st in
  eat_kw st "as";
  let target = type_ref st in
  eat_kw st "where";
  let rec go acc =
    if accept_kw st "end" then begin
      eat_kw st "fashion";
      eat st Token.SEMI;
      List.rev acc
    end
    else go (fashion_entry st :: acc)
  in
  let entries = go [] in
  { Ast.fd_masked = masked; fd_target = target; fd_entries = entries }

(* ------------------------------------------------------------------ *)
(* Top level                                                            *)
(* ------------------------------------------------------------------ *)

let unit_items st =
  let rec go acc =
    match tok st with
    | Token.EOF -> List.rev acc
    | Token.KW "schema" -> go (Ast.Uschema (schema_def st) :: acc)
    | Token.KW "fashion" -> go (Ast.Ufashion (fashion_def st) :: acc)
    | _ -> fail st "expected a schema or fashion definition"
  in
  go []

let parse_unit (src : string) : Ast.unit_item list =
  let st = make (Lexer.tokenize src) in
  unit_items st

(* ------------------------------------------------------------------ *)
(* Evolution commands                                                   *)
(* ------------------------------------------------------------------ *)

let command st : Ast.command =
  match tok st with
  | Token.KW "bes" ->
      advance st;
      eat st Token.SEMI;
      Ast.Begin_session
  | Token.KW "ees" ->
      advance st;
      eat st Token.SEMI;
      Ast.End_session
  | Token.KW "schema" | Token.KW "fashion" -> (
      (* whole definition frames are commands too *)
      match tok st with
      | Token.KW "schema" -> Ast.Load [ Ast.Uschema (schema_def st) ]
      | _ -> Ast.Fashion_cmd (fashion_def st))
  | Token.KW "add" -> (
      advance st;
      match tok st with
      | Token.KW "schema" ->
          advance st;
          let name = ident st in
          eat st Token.SEMI;
          Ast.Add_schema name
      | Token.KW "type" ->
          advance st;
          let name = ident st in
          eat_kw st "to";
          let schema = ident st in
          let supers =
            if accept_kw st "supertype" then
              let rec go acc =
                let t = type_ref st in
                if accept st Token.COMMA then go (t :: acc)
                else List.rev (t :: acc)
              in
              go []
            else []
          in
          eat st Token.SEMI;
          Ast.Add_type (name, schema, supers)
      | Token.KW "sort" ->
          advance st;
          let name = ident st in
          eat_kw st "is";
          eat_kw st "enum";
          eat st Token.LPAREN;
          let values = ident_list st in
          eat st Token.RPAREN;
          eat_kw st "to";
          let schema = ident st in
          eat st Token.SEMI;
          Ast.Add_sort (name, schema, values)
      | Token.KW "attribute" ->
          advance st;
          let name = ident st in
          eat st Token.COLON;
          let dom = type_ref st in
          eat_kw st "to";
          let ty = type_ref st in
          eat st Token.SEMI;
          Ast.Add_attribute (ty, name, dom)
      | Token.KW "operation" ->
          advance st;
          let s = op_sig st in
          (* op_sig consumed the ';' — re-parse tail: "to <type>;" *)
          eat_kw st "to";
          let ty = type_ref st in
          eat st Token.SEMI;
          Ast.Add_operation (ty, s)
      | Token.KW "supertype" ->
          advance st;
          let sup = type_ref st in
          eat_kw st "to";
          let ty = type_ref st in
          eat st Token.SEMI;
          Ast.Add_supertype (ty, sup)
      | _ -> fail st "expected schema, type, sort, attribute, operation or supertype")
  | Token.KW "delete" -> (
      advance st;
      match tok st with
      | Token.KW "schema" ->
          advance st;
          let name = ident st in
          eat st Token.SEMI;
          Ast.Delete_schema name
      | Token.KW "type" ->
          advance st;
          let ty = type_ref st in
          eat st Token.SEMI;
          Ast.Delete_type ty
      | Token.KW "attribute" ->
          advance st;
          let name = ident st in
          eat_kw st "from";
          let ty = type_ref st in
          eat st Token.SEMI;
          Ast.Delete_attribute (ty, name)
      | Token.KW "operation" ->
          advance st;
          let name = ident st in
          eat_kw st "from";
          let ty = type_ref st in
          eat st Token.SEMI;
          Ast.Delete_operation (ty, name)
      | Token.KW "supertype" ->
          advance st;
          let sup = type_ref st in
          eat_kw st "from";
          let ty = type_ref st in
          eat st Token.SEMI;
          Ast.Delete_supertype (ty, sup)
      | _ -> fail st "expected schema, type, attribute, operation or supertype")
  | Token.KW "rename" ->
      advance st;
      eat_kw st "type";
      let ty = type_ref st in
      eat_kw st "to";
      let name = ident st in
      eat st Token.SEMI;
      Ast.Rename_type (ty, name)
  | Token.KW "refine" ->
      advance st;
      eat_kw st "operation";
      let s = op_sig st in
      eat_kw st "to";
      let receiver = type_ref st in
      eat_kw st "from";
      let refined = type_ref st in
      eat st Token.SEMI;
      Ast.Refine_operation (receiver, s, refined)
  | Token.KW "set" ->
      advance st;
      eat_kw st "code";
      eat_kw st "of";
      let op = ident st in
      let params =
        if accept st Token.LPAREN then begin
          if accept st Token.RPAREN then []
          else
            let rec go acc =
              let p = ident st in
              if accept st Token.COMMA then go (p :: acc)
              else begin
                eat st Token.RPAREN;
                List.rev (p :: acc)
              end
            in
            go []
        end
        else []
      in
      eat_kw st "of";
      let ty = type_ref st in
      eat_kw st "is";
      let body = stmt st in
      ignore (accept st Token.SEMI);
      Ast.Set_code (ty, op, params, body)
  | Token.KW "copy" ->
      advance st;
      eat_kw st "type";
      let ty = type_ref st in
      eat_kw st "to";
      let schema = ident st in
      eat st Token.SEMI;
      Ast.Copy_type (ty, schema)
  | Token.KW "evolve" -> (
      advance st;
      match tok st with
      | Token.KW "schema" ->
          advance st;
          let a = ident st in
          eat_kw st "to";
          let b = ident st in
          eat st Token.SEMI;
          Ast.Evolve_schema (a, b)
      | Token.KW "type" ->
          advance st;
          let a = type_ref st in
          eat_kw st "to";
          let b = type_ref st in
          eat st Token.SEMI;
          Ast.Evolve_type (a, b)
      | _ -> fail st "expected schema or type after evolve")
  | _ -> fail st "expected an evolution command"

let parse_commands (src : string) : Ast.command list =
  let st = make (Lexer.tokenize src) in
  let rec go acc =
    if tok st = Token.EOF then List.rev acc else go (command st :: acc)
  in
  go []
