(* Hand-written lexer for the GOM definition and evolution languages.
   Comments: "!! ..." to end of line (the paper's style) and "/* ... */". *)

exception Error of string * int * int  (* message, line, column *)

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
}

let make src = { src; pos = 0; line = 1; bol = 0 }

let col st = st.pos - st.bol + 1

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | Some _ | None -> ());
  st.pos <- st.pos + 1

let error st msg = raise (Error (msg, st.line, col st))

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_alpha c || is_digit c || c = '$'

let rec skip_space st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_space st
  | Some '!' when peek2 st = Some '!' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_space st
  | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      let rec to_close () =
        match peek st, peek2 st with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | None, _ -> error st "unterminated comment"
        | Some _, _ ->
            advance st;
            to_close ()
      in
      to_close ();
      skip_space st
  | Some _ | None -> ()

let lex_ident st =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when is_ident c ->
        advance st;
        go ()
    | Some _ | None -> ()
  in
  go ();
  String.sub st.src start (st.pos - start)

let lex_number st =
  let start = st.pos in
  let rec digits () =
    match peek st with
    | Some c when is_digit c ->
        advance st;
        digits ()
    | Some _ | None -> ()
  in
  digits ();
  match peek st, peek2 st with
  | Some '.', Some c when is_digit c ->
      advance st;
      digits ();
      Token.FLOAT (float_of_string (String.sub st.src start (st.pos - start)))
  | _ -> Token.INT (int_of_string (String.sub st.src start (st.pos - start)))

let lex_string st =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance st;
            go ()
        | Some c ->
            Buffer.add_char buf c;
            advance st;
            go ()
        | None -> error st "unterminated string literal")
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Token.STRING (Buffer.contents buf)

let next_token st : Token.located =
  skip_space st;
  let line = st.line and c0 = col st in
  let mk tok = { Token.tok; line; col = c0 } in
  match peek st with
  | None -> mk Token.EOF
  | Some c when is_alpha c ->
      let id = lex_ident st in
      if List.mem id Token.keywords then mk (Token.KW id) else mk (Token.IDENT id)
  | Some c when is_digit c -> mk (lex_number st)
  | Some '"' -> mk (lex_string st)
  | Some c -> (
      let two tok =
        advance st;
        advance st;
        mk tok
      in
      let one tok =
        advance st;
        mk tok
      in
      match c, peek2 st with
      | '-', Some '>' -> two Token.ARROW
      | '<', Some '-' -> two Token.LARROW
      | '<', Some '=' -> two Token.LE
      | '>', Some '=' -> two Token.GE
      | ':', Some '=' -> two Token.ASSIGN
      | '=', Some '=' -> two Token.EQEQ
      | '!', Some '=' -> two Token.NEQ
      | '.', Some '.' -> two Token.DOTDOT
      | '[', _ -> one Token.LBRACKET
      | ']', _ -> one Token.RBRACKET
      | '(', _ -> one Token.LPAREN
      | ')', _ -> one Token.RPAREN
      | ';', _ -> one Token.SEMI
      | ':', _ -> one Token.COLON
      | ',', _ -> one Token.COMMA
      | '.', _ -> one Token.DOT
      | '@', _ -> one Token.AT
      | '/', _ -> one Token.SLASH
      | '<', _ -> one Token.LT
      | '>', _ -> one Token.GT
      | '+', _ -> one Token.PLUS
      | '-', _ -> one Token.MINUS
      | '*', _ -> one Token.STAR
      | _ -> error st (Printf.sprintf "unexpected character %C" c))

let tokenize (src : string) : Token.located list =
  let st = make src in
  let rec go acc =
    let t = next_token st in
    if t.Token.tok = Token.EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []
