(** Translation of parsed definitions and evolution commands into changes of
    the base-predicate extensions — the Analyzer's mapping in the paper's
    architecture.  Works against a private copy of the schema base so later
    parts of a unit see earlier parts; the accumulated delta is handed to the
    Consistency Control.  Name resolution implements the appendix-A
    visibility rules (own components, public components of direct subschemas
    and imports, renamings, conflict detection). *)

type env

val create :
  ?lookup_code:(string -> (string list * Ast.stmt) option) ->
  Datalog.Database.t ->
  Gom.Ids.gen ->
  env
(** The database is copied; the generator is shared (advanced in place). *)

val delta : env -> Datalog.Delta.t
val diagnostics : env -> string list

val code_asts : env -> (string * (string list * Ast.stmt)) list
(** Parsed bodies registered during translation, for the Runtime. *)

val resolve_type_ref : env -> sid:string -> Ast.type_ref -> string option
(** Resolution with an unknown-name diagnostic. *)

val resolve_quiet : env -> sid:string -> Ast.type_ref -> string option

val resolve_schema_path :
  env -> from_sid:string -> Ast.schema_path -> string option
(** Absolute, parent-relative ([..]) or child-relative schema paths. *)

val translate_unit : env -> Ast.unit_item list -> unit
val translate_command : env -> Ast.command -> unit
