(* Bundled example sources: the paper's running example (section 3.1) and the
   appendix-A company schema hierarchy, in the concrete GOM syntax accepted by
   the parser.  Used by tests, examples and the reproduction benches. *)

let car_schema =
  {|
schema CarSchema is

  type Person is
    [ name : string;
      age  : int; ]
  end type Person;

  type Location is
    [ longi : float;
      lati  : float; ]
  operations
    declare distance : (Location) -> float;
  implementation
    define distance(other) is
    begin
      !! uses longi and lati
      return (self.longi - other.longi) * (self.longi - other.longi)
           + (self.lati - other.lati) * (self.lati - other.lati);
    end distance;
  end type Location;

  type City supertype Location is
    [ name            : string;
      noOfInhabitants : int; ]
  refine
    declare distance : (Location) -> float;
  implementation
    define distance(other) is
    begin
      !! uses longi and lati as well as city name
      if (self.name == "nowhere") return 0.0;
      var dx : float := self.longi - other.longi;
      var dy : float := self.lati - other.lati;
      if (dx < 0.0) return other.distance(self);
      return dx * dx + dy * dy;
    end distance;
  end type City;

  type Car is
    [ owner    : Person;
      maxspeed : float;
      milage   : float;
      location : City; ]
  operations
    declare changeLocation : (Person, City) -> float;
  implementation
    define changeLocation(driver, newLocation) is
    begin
      if (self.owner == driver)
      begin
        self.milage := self.milage + self.location.distance(newLocation);
        self.location := newLocation;
        return self.milage;
      end
      else return -1.0;
    end changeLocation;
  end type Car;

end schema CarSchema;
|}

(* Appendix A: the company schema hierarchy of Figure 3, with the public
   clauses, the Cuboid name spaces, renaming, and the CSG2BoundRep importer. *)
let company_schemas =
  {|
schema BoundaryRep is
  public Cuboid;
interface
  type Cuboid is [ volume : float; ] end type Cuboid;
implementation
  type Surface is [ area : float; ] end type Surface;
  type Edge is [ length : float; ] end type Edge;
  type Vertex is [ x : float; y : float; z : float; ] end type Vertex;
end schema BoundaryRep;

schema CSG is
  public Cuboid;
interface
  type Cuboid is [ width : float; height : float; depth : float; ]
  end type Cuboid;
implementation
end schema CSG;

schema Geometry is
  public CSGCuboid, BRepCuboid;
interface
  subschema CSG with
    type Cuboid as CSGCuboid;
  end subschema CSG;
  subschema BoundaryRep with
    type Cuboid as BRepCuboid;
  end subschema BoundaryRep;
  subschema CSG2BoundRep;
end schema Geometry;

schema FEM is
end schema FEM;

schema Function is
end schema Function;

schema Technology is
end schema Technology;

schema CAD is
  subschema Geometry;
  subschema FEM;
  subschema Function;
  subschema Technology;
end schema CAD;

schema CAPP is
  public Schedule;
interface
  type Schedule is [ steps : int; ] end type Schedule;
end schema CAPP;

schema CAM is
end schema CAM;

schema Marketing is
end schema Marketing;

schema Company is
  subschema CAD;
  subschema CAPP;
  subschema CAM;
  subschema Marketing;
end schema Company;

schema CSG2BoundRep is
  public convert;
interface
  import /Company/CAD/Geometry/CSG with
    type Cuboid as CSGCuboid;
  end import;
  import /Company/CAD/Geometry/BoundaryRep with
    type Cuboid as BRepCuboid;
  end import;
  type Converter is
  operations
    declare convert : (CSGCuboid) -> BRepCuboid;
  implementation
    define convert(c) is
    begin
      var result : BRepCuboid := new BRepCuboid;
      result.volume := c.width * c.height * c.depth;
      return result;
    end convert;
  end type Converter;
end schema CSG2BoundRep;
|}

(* The section 4.2 evolution: NewCarSchema with PolluterCar / CatalystCar. *)
let new_car_schema_commands =
  {|
bes;
add schema NewCarSchema;
evolve schema CarSchema to NewCarSchema;
copy type Person@CarSchema to NewCarSchema;
copy type Location@CarSchema to NewCarSchema;
copy type City@CarSchema to NewCarSchema;
add sort Fuel is enum (leaded, unleaded) to NewCarSchema;
copy type Car@CarSchema to NewCarSchema;
add type PolluterCar to NewCarSchema supertype Car@NewCarSchema;
add type CatalystCar to NewCarSchema supertype Car@NewCarSchema;
evolve type Car@CarSchema to PolluterCar@NewCarSchema;
add operation fuel : -> Fuel@NewCarSchema to PolluterCar@NewCarSchema;
set code of fuel of PolluterCar@NewCarSchema is begin return leaded; end;
add operation fuel : -> Fuel@NewCarSchema to CatalystCar@NewCarSchema;
set code of fuel of CatalystCar@NewCarSchema is begin return unleaded; end;
ees;
|}
