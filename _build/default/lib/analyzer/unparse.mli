(** Unparsing: reconstruct GOM definition frames from the Schema Base — the
    inverse of Translate up to layout.  Used by the CLI dump command and the
    round-trip tests. *)

type ctx

val make :
  db:Datalog.Database.t ->
  lookup_code:(string -> (string list * Ast.stmt) option) ->
  ctx

val unparse_schema : ctx -> sid:string -> string

val unparse_all : ctx -> string
(** Every user schema as definition frames, ordered so that re-parsing
    resolves (renames and cross-schema references after their sources,
    importers after the frames that build their import paths).  Version
    edges and fashion clauses are NOT included — see {!unparse_script}. *)

val unparse_evolutions : ctx -> string
(** The version edges as evolution commands. *)

val unparse_fashions : ctx -> string
(** The fashion clauses, reconstructed from the Fashion* facts and the
    registered code. *)

val unparse_script : ctx -> string
(** The complete state as one evolution script ([bes; ... ees;]),
    re-loadable with [Manager.run_script] or [gomsm script]. *)
