(* Facade of the Analyzer module: parse GOM definition text or evolution
   commands and map them to base-predicate deltas (plus the parsed method
   bodies, which the Runtime System interprets). *)

module Ast = Ast
module Token = Token
module Lexer = Lexer
module Parser = Parser
module Code_analysis = Code_analysis
module Translate = Translate
module Unparse = Unparse
module Sources = Sources

type result = {
  delta : Datalog.Delta.t;
  diagnostics : string list;
  code_asts : (string * (string list * Ast.stmt)) list;
  commands : Ast.command list;  (* for command input: the parsed commands *)
}

exception Syntax_error of string

let wrap_syntax f =
  try f () with
  | Lexer.Error (msg, line, col) ->
      raise (Syntax_error (Printf.sprintf "%d:%d: %s" line col msg))
  | Parser.Error (msg, line, col) ->
      raise (Syntax_error (Printf.sprintf "%d:%d: %s" line col msg))

let parse_unit src = wrap_syntax (fun () -> Parser.parse_unit src)
let parse_commands src = wrap_syntax (fun () -> Parser.parse_commands src)

(* Analyze a full definition text (schema and fashion frames). *)
let analyze_definitions ?lookup_code (db : Datalog.Database.t)
    (ids : Gom.Ids.gen) (src : string) : result =
  let items = parse_unit src in
  let env = Translate.create ?lookup_code db ids in
  Translate.translate_unit env items;
  {
    delta = Translate.delta env;
    diagnostics = Translate.diagnostics env;
    code_asts = Translate.code_asts env;
    commands = [];
  }

(* Analyze evolution-command text.  Begin/End session markers are returned in
   [commands] for the session layer; everything else is translated. *)
let analyze_commands ?lookup_code (db : Datalog.Database.t) (ids : Gom.Ids.gen)
    (src : string) : result =
  let commands = parse_commands src in
  let env = Translate.create ?lookup_code db ids in
  List.iter (Translate.translate_command env) commands;
  {
    delta = Translate.delta env;
    diagnostics = Translate.diagnostics env;
    code_asts = Translate.code_asts env;
    commands;
  }

(* Analyze already-parsed commands. *)
let analyze_parsed ?lookup_code (db : Datalog.Database.t) (ids : Gom.Ids.gen)
    (commands : Ast.command list) : result =
  let env = Translate.create ?lookup_code db ids in
  List.iter (Translate.translate_command env) commands;
  {
    delta = Translate.delta env;
    diagnostics = Translate.diagnostics env;
    code_asts = Translate.code_asts env;
    commands;
  }
