lib/analyzer/translate.mli: Ast Datalog Gom
