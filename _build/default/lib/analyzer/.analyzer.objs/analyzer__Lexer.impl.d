lib/analyzer/lexer.ml: Buffer List Printf String Token
