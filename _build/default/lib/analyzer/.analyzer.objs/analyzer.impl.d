lib/analyzer/analyzer.ml: Ast Code_analysis Datalog Gom Lexer List Parser Printf Sources Token Translate Unparse
