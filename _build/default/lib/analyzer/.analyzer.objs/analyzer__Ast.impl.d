lib/analyzer/ast.ml: Buffer Fmt Format List Option
