lib/analyzer/code_analysis.ml: Array Ast Datalog Fmt Gom List Option Preds Printf Schema_base Sorts
