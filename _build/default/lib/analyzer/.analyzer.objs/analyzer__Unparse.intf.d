lib/analyzer/unparse.mli: Ast Datalog
