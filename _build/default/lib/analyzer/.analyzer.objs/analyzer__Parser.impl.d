lib/analyzer/parser.ml: Array Ast Lexer List Printf Token
