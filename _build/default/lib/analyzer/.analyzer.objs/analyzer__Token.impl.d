lib/analyzer/token.ml: Printf
