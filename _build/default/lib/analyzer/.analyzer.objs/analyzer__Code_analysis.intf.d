lib/analyzer/code_analysis.mli: Ast Datalog
