lib/analyzer/unparse.ml: Array Ast Buffer Builtin Datalog Gom Hashtbl List Option Preds Printf Schema_base Sorts String
