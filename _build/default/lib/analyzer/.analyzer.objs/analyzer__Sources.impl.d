lib/analyzer/sources.ml:
