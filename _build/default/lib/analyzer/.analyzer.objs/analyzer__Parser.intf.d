lib/analyzer/parser.mli: Ast
