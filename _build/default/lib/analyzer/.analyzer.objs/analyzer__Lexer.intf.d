lib/analyzer/lexer.mli: Token
