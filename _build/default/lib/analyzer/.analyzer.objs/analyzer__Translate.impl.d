lib/analyzer/translate.ml: Array Ast Builtin Code_analysis Database Datalog Delta Fact Fmt Gom Hashtbl Ids List Option Preds Printf Schema_base Sorts String Term
