(* Tokens of the GOM definition and evolution languages. *)

type t =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  (* keywords *)
  | KW of string  (* lower-case keyword, e.g. "schema", "type", "is" *)
  (* punctuation *)
  | LBRACKET | RBRACKET
  | LPAREN | RPAREN
  | SEMI | COLON | COMMA | DOT | DOTDOT | AT | SLASH
  | ARROW  (* -> *)
  | LARROW  (* <- *)
  | ASSIGN  (* := *)
  | EQEQ | NEQ | LT | LE | GT | GE
  | PLUS | MINUS | STAR
  | EOF

let keywords =
  [
    "schema"; "type"; "sort"; "is"; "end"; "supertype"; "operations";
    "refine"; "implementation"; "interface"; "public"; "subschema"; "import";
    "with"; "as"; "var"; "operation"; "declare"; "define"; "enum"; "begin";
    "if"; "else"; "while"; "return"; "self"; "new"; "not"; "and"; "or";
    "true"; "false"; "fashion"; "where"; "bes"; "ees"; "add"; "delete";
    "rename"; "set"; "code"; "of"; "to"; "from"; "attribute"; "evolve";
    "copy"; "value";
  ]

type located = { tok : t; line : int; col : int }

let describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT i -> Printf.sprintf "integer %d" i
  | FLOAT f -> Printf.sprintf "float %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | KW k -> Printf.sprintf "keyword %S" k
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | SEMI -> "';'"
  | COLON -> "':'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | DOTDOT -> "'..'"
  | AT -> "'@'"
  | SLASH -> "'/'"
  | ARROW -> "'->'"
  | LARROW -> "'<-'"
  | ASSIGN -> "':='"
  | EQEQ -> "'=='"
  | NEQ -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | EOF -> "end of input"
