(* Abstract syntax of the GOM data definition language: schema definition
   frames (appendix A), type definition frames with attributes and operations
   (section 3.1), method bodies, sorts, fashion clauses (section 4.1), and the
   schema evolution command language used inside evolution sessions. *)

(* A reference to a type: by local name, or by the @-notation pinning the
   schema version ("Person@CarSchema"). *)
type type_ref = { ref_name : string; ref_schema : string option }

let local name = { ref_name = name; ref_schema = None }
let at name schema = { ref_name = name; ref_schema = Some schema }

let pp_type_ref ppf r =
  match r.ref_schema with
  | None -> Fmt.string ppf r.ref_name
  | Some s -> Fmt.pf ppf "%s@%s" r.ref_name s

(* --- Method-body expressions and statements --- *)

type binop =
  | Add | Sub | Mul | Div
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or

type expr =
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Bool_lit of bool
  | Self
  | Var of string  (* parameter, local, enum value or schema variable *)
  | Attr_access of expr * string  (* e.attr *)
  | Call of expr * string * expr list  (* e.op(args) *)
  | Binop of binop * expr * expr
  | Neg of expr
  | Not of expr
  | New of type_ref

type lvalue =
  | Lvar of string
  | Lattr of expr * string  (* e.attr := ... *)

type stmt =
  | Block of stmt list
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | Return of expr option
  | Local of string * type_ref * expr option  (* var x : T [:= e] *)
  | Assign of lvalue * expr
  | Expr of expr

(* --- Declarations --- *)

type op_sig = {
  op_name : string;
  op_args : type_ref list;
  op_result : type_ref;
}

type op_impl = {
  impl_name : string;
  impl_params : string list;
  impl_body : stmt;
}

type type_def = {
  td_name : string;
  td_supertypes : type_ref list;
  td_attrs : (string * type_ref) list;
  td_operations : op_sig list;  (* the operations section *)
  td_refines : op_sig list;  (* the refine section *)
  td_implementation : op_impl list;
}

type sort_def = { sd_name : string; sd_values : string list }

(* --- Schema definition frames (appendix A) --- *)

type rename = { rn_kind : comp_kind; rn_old : string; rn_new : string }
and comp_kind = Ktype | Kvar | Kop | Kschema

type subschema_clause = { ss_name : string; ss_renames : rename list }

(* An import path: absolute (/Company/CAD/...), parent-relative (../CSG) or
   child-relative (Geometry/CSG). *)
type schema_path = {
  sp_absolute : bool;
  sp_updots : int;  (* leading ".." count *)
  sp_segments : string list;
}

type import_clause = { im_path : schema_path; im_renames : rename list }

type component =
  | Ctype of type_def
  | Csort of sort_def
  | Cvar of string * type_ref
  | Csubschema of subschema_clause
  | Cimport of import_clause

type schema_def = {
  sch_name : string;
  sch_public : string list;
  sch_interface : component list;
  sch_implementation : component list;
}

(* --- Fashion clauses (section 4.1) --- *)

type fashion_entry =
  | Fread of string * type_ref * stmt  (* attr : -> T is ... *)
  | Fwrite of string * type_ref * stmt  (* attr : <- T is ... (param "value") *)
  | Fredirect of string * type_ref * expr  (* attr : T is lvalue-expr *)
  | Fop of string * string list * stmt  (* op(params) is ... *)

type fashion_def = {
  fd_masked : type_ref;  (* instances of this type ... *)
  fd_target : type_ref;  (* ... become substitutable for this one *)
  fd_entries : fashion_entry list;
}

(* --- Bottom-up mapping over code (used by rewriting evolution operators
   and by the translator to canonicalize type references) --- *)

let rec map_expr f (e : expr) : expr =
  let e =
    match e with
    | Int_lit _ | Float_lit _ | String_lit _ | Bool_lit _ | Self | Var _
    | New _ ->
        e
    | Attr_access (obj, a) -> Attr_access (map_expr f obj, a)
    | Call (obj, op, args) -> Call (map_expr f obj, op, List.map (map_expr f) args)
    | Binop (op, a, b) -> Binop (op, map_expr f a, map_expr f b)
    | Neg a -> Neg (map_expr f a)
    | Not a -> Not (map_expr f a)
  in
  f e

let rec map_stmt f (s : stmt) : stmt =
  match s with
  | Block ss -> Block (List.map (map_stmt f) ss)
  | If (c, a, b) -> If (map_expr f c, map_stmt f a, Option.map (map_stmt f) b)
  | While (c, a) -> While (map_expr f c, map_stmt f a)
  | Return e -> Return (Option.map (map_expr f) e)
  | Local (x, ty, init) -> Local (x, ty, Option.map (map_expr f) init)
  | Assign (Lvar x, e) -> Assign (Lvar x, map_expr f e)
  | Assign (Lattr (obj, a), e) -> Assign (Lattr (map_expr f obj, a), map_expr f e)
  | Expr e -> Expr (map_expr f e)

(* --- Printers (used for the Code fact's text column and diagnostics) --- *)

let pp_binop ppf op =
  Fmt.string ppf
    (match op with
    | Add -> "+"
    | Sub -> "-"
    | Mul -> "*"
    | Div -> "/"
    | Eq -> "=="
    | Ne -> "!="
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">="
    | And -> "and"
    | Or -> "or")

let rec pp_expr ppf = function
  | Int_lit i -> Fmt.int ppf i
  | Float_lit f -> Fmt.pf ppf "%g" f
  | String_lit s -> Fmt.pf ppf "%S" s
  | Bool_lit b -> Fmt.bool ppf b
  | Self -> Fmt.string ppf "self"
  | Var x -> Fmt.string ppf x
  | Attr_access (e, a) -> Fmt.pf ppf "%a.%s" pp_receiver e a
  | Call (e, op, args) ->
      Fmt.pf ppf "%a.%s(%a)" pp_receiver e op
        Fmt.(list ~sep:(any ", ") pp_expr)
        args
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp_expr a pp_binop op pp_expr b
  | Neg e -> Fmt.pf ppf "-%a" pp_expr e
  | Not e -> Fmt.pf ppf "not %a" pp_expr e
  | New r -> Fmt.pf ppf "new %a" pp_type_ref r

(* receivers of '.' bind tighter than unary operators *)
and pp_receiver ppf e =
  match e with
  | Not _ | Neg _ | New _ -> Fmt.pf ppf "(%a)" pp_expr e
  | _ -> pp_expr ppf e

let pp_lvalue ppf = function
  | Lvar x -> Fmt.string ppf x
  | Lattr (e, a) -> Fmt.pf ppf "%a.%s" pp_expr e a

let rec pp_stmt ppf = function
  | Block ss -> Fmt.pf ppf "begin %a end" Fmt.(list ~sep:(any " ") pp_stmt) ss
  | If (c, a, None) -> Fmt.pf ppf "if (%a) %a" pp_expr c pp_stmt a
  | If (c, a, Some b) ->
      (* brace the then-branch so a nested if cannot capture the else *)
      let a = match a with Block _ -> a | _ -> Block [ a ] in
      Fmt.pf ppf "if (%a) %a else %a" pp_expr c pp_stmt a pp_stmt b
  | While (c, a) -> Fmt.pf ppf "while (%a) %a" pp_expr c pp_stmt a
  | Return None -> Fmt.string ppf "return;"
  | Return (Some e) -> Fmt.pf ppf "return %a;" pp_expr e
  | Local (x, ty, None) -> Fmt.pf ppf "var %s : %a;" x pp_type_ref ty
  | Local (x, ty, Some e) ->
      Fmt.pf ppf "var %s : %a := %a;" x pp_type_ref ty pp_expr e
  | Assign (lv, e) -> Fmt.pf ppf "%a := %a;" pp_lvalue lv pp_expr e
  | Expr e -> Fmt.pf ppf "%a;" pp_expr e

(* Single-line rendering (no margin breaks): the result is embedded in
   line-oriented formats (Code fact text, persistence records). *)
let stmt_to_string s =
  let buf = Buffer.create 128 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_set_margin ppf 1_000_000_000;
  pp_stmt ppf s;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* --- Top-level compilation units --- *)

type unit_item =
  | Uschema of schema_def
  | Ufashion of fashion_def

(* --- Schema evolution commands (session language) --- *)

type command =
  | Begin_session
  | End_session
  | Add_schema of string
  | Add_type of string * string * type_ref list  (* name, schema, supertypes *)
  | Add_sort of string * string * string list  (* name, schema, enum values *)
  | Add_attribute of type_ref * string * type_ref
  | Delete_attribute of type_ref * string
  | Add_operation of type_ref * op_sig
  | Delete_operation of type_ref * string
  | Refine_operation of type_ref * op_sig * type_ref
    (* receiver, signature, type whose declaration is refined *)
  | Set_code of type_ref * string * string list * stmt
    (* receiver, op name, params, body *)
  | Add_supertype of type_ref * type_ref
  | Delete_supertype of type_ref * type_ref
  | Rename_type of type_ref * string
  | Delete_type of type_ref
  | Delete_schema of string
  | Copy_type of type_ref * string  (* reuse a type's definition in a schema *)
  | Evolve_schema of string * string
  | Evolve_type of type_ref * type_ref
  | Fashion_cmd of fashion_def
  | Load of unit_item list  (* whole definition frames inside a session *)
