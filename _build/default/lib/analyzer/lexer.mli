(** Hand-written lexer for the GOM definition and evolution languages.
    Comments: "!! ..." to end of line and "/* ... */". *)

exception Error of string * int * int
(** (message, line, column). *)

val tokenize : string -> Token.located list
(** The token stream, terminated by EOF.  @raise Error on lexical errors. *)
