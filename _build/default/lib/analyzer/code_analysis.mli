(** Static analysis of method bodies: best-effort type inference extracting
    the dependencies the Consistency Control models — attributes accessed
    (recorded against the declaring type, as in the paper's tables) and
    operations called.  Unresolvable accesses become diagnostics; the
    recorded facts are judged declaratively by the constraints. *)

type ctx = {
  db : Datalog.Database.t;  (** working schema base, including pending facts *)
  self_tid : string;
  params : (string * string) list;  (** parameter name -> type id *)
  resolve : Ast.type_ref -> string option;
      (** name resolution in the defining schema's scope *)
}

type result = {
  attrs_used : (string * string) list;  (** declaring type id, attribute name *)
  decls_used : string list;  (** declaration ids of called operations *)
  diags : string list;
}

val declaring_type :
  ctx -> tid:string -> name:string -> (string * string) option
(** The type that directly declares an attribute, searching upwards;
    (declaring tid, domain). *)

val analyze : ctx -> Ast.stmt -> result
