(** Recursive-descent parser for the GOM definition language (schema and
    type definition frames, fashion clauses) and the schema evolution
    command language. *)

exception Error of string * int * int
(** (message, line, column). *)

val parse_unit : string -> Ast.unit_item list
(** Parse definition frames.  @raise Error on syntax errors. *)

val parse_commands : string -> Ast.command list
(** Parse evolution commands (bes/ees markers included).
    @raise Error on syntax errors. *)
