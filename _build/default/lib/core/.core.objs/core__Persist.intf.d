lib/core/persist.mli: Buffer Manager
