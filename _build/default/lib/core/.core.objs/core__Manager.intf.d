lib/core/manager.mli: Analyzer Datalog Gom Runtime
