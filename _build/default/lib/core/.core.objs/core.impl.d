lib/core/core.ml: Manager Persist
