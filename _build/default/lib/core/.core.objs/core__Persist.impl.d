lib/core/persist.ml: Analyzer Array Buffer Database Datalog Delta Fact Gom Hashtbl List Manager Printf Runtime String Term
