(* The schema manager for the core of GOM (and its extensions): the paper's
   Consistency Control wired to the Analyzer and the Runtime System.

   {[
     let m = Core.Manager.create () in
     Core.Manager.begin_session m;
     Core.Manager.load_definitions m my_schema_text;
     match Core.Manager.end_session m with
     | Core.Manager.Consistent -> ...
     | Core.Manager.Inconsistent reports -> ...
   ]} *)

module Manager = Manager
module Persist = Persist
