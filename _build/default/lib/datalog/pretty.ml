(* Plain-text table rendering, used to regenerate the paper's extension
   tables (Figure 2 and friends) and by the benchmark harness. *)

module Table = struct
  type t = { header : string list option; rows : string list list }

  let make ?header rows = { header; rows }

  let width t =
    List.fold_left
      (fun acc row -> max acc (List.length row))
      (match t.header with Some h -> List.length h | None -> 0)
      t.rows

  let render t =
    let n = width t in
    let pad row = row @ List.init (n - List.length row) (fun _ -> "") in
    let all =
      (match t.header with Some h -> [ pad h ] | None -> [])
      @ List.map pad t.rows
    in
    let widths = Array.make n 0 in
    List.iter
      (List.iteri (fun i cell ->
           widths.(i) <- max widths.(i) (String.length cell)))
      all;
    let rec rstrip s =
      let l = String.length s in
      if l > 0 && s.[l - 1] = ' ' then rstrip (String.sub s 0 (l - 1)) else s
    in
    let line row =
      rstrip
        (String.concat "  "
           (List.mapi
              (fun i cell ->
                cell ^ String.make (widths.(i) - String.length cell) ' ')
              row))
    in
    let body = List.map line (List.map pad t.rows) in
    let all_lines =
      match t.header with
      | None -> body
      | Some h ->
          let hl = line (pad h) in
          let sep = String.make (String.length hl) '-' in
          hl :: sep :: body
    in
    String.concat "\n" all_lines
end

(* Group facts of several predicates into a Figure-2-style table: the
   predicate name appears on the first row of its group only. *)
let extension_table (db : Database.t) (preds : string list) : string =
  let rows =
    List.concat_map
      (fun pred ->
        let facts =
          Database.facts db pred
          |> List.sort Fact.compare
          |> List.map (fun (f : Fact.t) ->
                 Array.to_list f.args |> List.map Term.const_to_string)
        in
        match facts with
        | [] -> []
        | first :: rest ->
            (pred :: first) :: List.map (fun r -> "" :: r) rest)
      preds
  in
  Table.render (Table.make rows)

let pp_rules ppf rules =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut Rule.pp) rules
