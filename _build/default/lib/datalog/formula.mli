(** First-order constraint formulas for declarative schema consistency. *)

type t =
  | True
  | False
  | Atom of Atom.t
  | Cmp of Rule.cmp * Term.t * Term.t
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | Forall of string list * t
  | Exists of string list * t

(** {2 Smart constructors} *)

val atom : string -> Term.t list -> t
val ( ==> ) : t -> t -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val conj : t list -> t
val disj : t list -> t
val neg : t -> t
val forall : string list -> t -> t
val exists : string list -> t -> t
val eq : Term.t -> Term.t -> t
val ne : Term.t -> Term.t -> t

(** {2 Analysis and transformation} *)

val free_vars : t -> string list
val is_closed : t -> bool

val nnf : t -> t
(** Negation normal form; [Implies]/[Iff] expanded, negations pushed to
    atoms and comparisons. *)

val miniscope : t -> t
(** Push quantifiers inward (input in NNF with bound variables standardized
    apart).  Makes paper-style mixed forall/exists prefixes compile to
    range-restricted rules. *)

val standardize_apart : t -> t
(** Rename bound variables apart so compilation never captures. *)

val pp : t Fmt.t
val to_string : t -> string
