(* Substitutions binding variables to constants during evaluation. *)

module M = Map.Make (String)

type t = Term.const M.t

let empty = M.empty
let find v (s : t) = M.find_opt v s
let bind v c (s : t) = M.add v c s
let mem v (s : t) = M.mem v s
let bindings (s : t) = M.bindings s

(* Unify a single term against a constant. *)
let unify_term (t : Term.t) (c : Term.const) (s : t) =
  match t with
  | Const c' -> if Term.equal_const c' c then Some s else None
  | Var v -> (
      match M.find_opt v s with
      | None -> Some (M.add v c s)
      | Some c' -> if Term.equal_const c' c then Some s else None)

(* Unify an atom's argument vector against a ground tuple. *)
let unify_args (args : Term.t array) (tuple : Term.const array) (s : t) =
  let n = Array.length args in
  if n <> Array.length tuple then None
  else
    let rec go i s =
      if i >= n then Some s
      else
        match unify_term args.(i) tuple.(i) s with
        | None -> None
        | Some s -> go (i + 1) s
    in
    go 0 s

let apply_term (s : t) (t : Term.t) : Term.t =
  match t with
  | Const _ -> t
  | Var v -> ( match M.find_opt v s with None -> t | Some c -> Const c)

let apply_atom (s : t) (a : Atom.t) : Atom.t =
  { a with args = Array.map (apply_term s) a.args }

(* Ground an atom into a fact; unbound variables become Fresh placeholders. *)
let ground_atom (s : t) (a : Atom.t) : Fact.t =
  let conv = function
    | Term.Const c -> c
    | Term.Var v -> (
        match M.find_opt v s with None -> Term.Fresh v | Some c -> c)
  in
  { Fact.pred = a.pred; args = Array.map conv a.args }

let pp ppf (s : t) =
  let pp_binding ppf (v, c) = Fmt.pf ppf "%s=%a" v Term.pp_const c in
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp_binding) (M.bindings s)
