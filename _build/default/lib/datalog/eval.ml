(* Bottom-up evaluation of stratified Datalog programs.

   [eval_lits] enumerates the substitutions satisfying a body against a
   database; positive literals scan relations (optionally overridden, which is
   how semi-naive deltas are injected), negated literals and comparisons are
   tested once their variables are bound (guaranteed by [Rule.normalize]).

   [run] materializes the intensional predicates into the database with a
   semi-naive fixpoint per stratum; [run_naive] is the naive fixpoint kept for
   the ablation bench. *)

type prepared = { rules : Rule.t list; strat : Stratify.t }

let prepare rules =
  let rules = List.map Rule.normalize rules in
  { rules; strat = Stratify.compute rules }

let rules t = t.rules
let stratification t = t.strat
let is_idb t pred = Stratify.is_idb t.strat pred

(* Enumerate substitutions satisfying [lits] against [db], extending [s].
   [scan i] may override the relation scanned by the [i]-th literal (used to
   restrict one literal to a delta). *)
let eval_lits db ?(scan = fun _ -> None) lits s k =
  let rec go i lits s =
    match lits with
    | [] -> k s
    | Rule.Pos a :: rest ->
        let rel =
          match scan i with
          | Some r -> Some r
          | None -> Database.relation_opt db a.Atom.pred
        in
        (match rel with
        | None -> ()
        | Some rel ->
            let consider tuple =
              match Subst.unify_args a.Atom.args tuple s with
              | None -> ()
              | Some s -> go (i + 1) rest s
            in
            (* an argument bound under the current substitution selects the
               column index instead of a full scan *)
            let rec first_bound j =
              if j >= Array.length a.Atom.args then None
              else
                match Subst.apply_term s a.Atom.args.(j) with
                | Term.Const c -> Some (j, c)
                | Term.Var _ -> first_bound (j + 1)
            in
            (match first_bound 0 with
            | Some (col, key) -> (
                match Relation.lookup rel ~col ~key with
                | Some tuples -> List.iter consider tuples
                | None -> Relation.iter consider rel)
            | None -> Relation.iter consider rel))
    | Rule.Neg a :: rest ->
        let f = Subst.ground_atom s a in
        if not (Fact.is_ground f) then
          invalid_arg
            (Fmt.str "eval: negated literal not ground: %a" Fact.pp f);
        if not (Database.mem db f) then go (i + 1) rest s
    | Rule.Cmp (op, x, y) :: rest -> (
        match Subst.apply_term s x, Subst.apply_term s y with
        | Term.Const a, Term.Const b ->
            if Rule.eval_cmp op a b then go (i + 1) rest s
        | Term.Var v, Term.Const c when op = Rule.Eq ->
            go (i + 1) rest (Subst.bind v c s)
        | Term.Const c, Term.Var v when op = Rule.Eq ->
            go (i + 1) rest (Subst.bind v c s)
        | _ ->
            invalid_arg
              (Fmt.str "eval: comparison with unbound variable: %a"
                 Rule.pp_literal (Rule.Cmp (op, x, y))))
  in
  go 0 lits s

(* Evaluate one rule, collecting head facts not yet in [db] into [acc]. *)
let derive_rule db ?scan (r : Rule.t) acc =
  eval_lits db ?scan r.body Subst.empty (fun s ->
      let f = Subst.ground_atom s r.head in
      if not (Database.mem db f) then acc := f :: !acc)

(* One stratum, semi-naive.  [recursive p] holds for predicates defined in
   this stratum; rules mentioning them positively participate in delta
   rounds. *)
let run_stratum db rules =
  let heads = List.map (fun r -> r.Rule.head.Atom.pred) rules in
  let recursive p = List.mem p heads in
  (* Round 0: every rule against the full database. *)
  let fresh = ref [] in
  List.iter (fun r -> derive_rule db r fresh) rules;
  let delta = Database.create () in
  List.iter
    (fun f -> if Database.add db f then ignore (Database.add delta f))
    !fresh;
  (* Delta rounds: rule variants with one recursive literal over the delta. *)
  let variants =
    List.concat_map
      (fun r ->
        List.mapi (fun i lit -> i, lit) r.Rule.body
        |> List.filter_map (fun (i, lit) ->
               match lit with
               | Rule.Pos a when recursive a.Atom.pred ->
                   Some (r, i, a.Atom.pred)
               | Rule.Pos _ | Rule.Neg _ | Rule.Cmp _ -> None))
      rules
  in
  let rec loop delta =
    if Database.total delta > 0 then begin
      let fresh = ref [] in
      List.iter
        (fun (r, i, pred) ->
          match Database.relation_opt delta pred with
          | None -> ()
          | Some drel ->
              if not (Relation.is_empty drel) then
                derive_rule db
                  ~scan:(fun j -> if j = i then Some drel else None)
                  r fresh)
        variants;
      let next = Database.create () in
      List.iter
        (fun f -> if Database.add db f then ignore (Database.add next f))
        !fresh;
      loop next
    end
  in
  loop delta

let run t db = Array.iter (fun rules -> run_stratum db rules) (Stratify.strata t.strat)

(* Naive fixpoint per stratum: re-evaluate every rule until nothing new. *)
let run_naive t db =
  Array.iter
    (fun rules ->
      let changed = ref true in
      while !changed do
        changed := false;
        let fresh = ref [] in
        List.iter (fun r -> derive_rule db r fresh) rules;
        List.iter (fun f -> if Database.add db f then changed := true) !fresh
      done)
    (Stratify.strata t.strat)

(* Continue a materialized database after EDB additions: [added] must already
   be inserted into [db].  Sound for programs where the added predicates do
   not feed any negated literal (checked by the caller; see Incremental for
   the general case). *)
let continue_with_additions t db (added : Fact.t list) =
  let d = Database.create () in
  List.iter (fun f -> ignore (Database.add d f)) added;
  Array.iter
    (fun rules ->
      (* Variants: any rule literal whose predicate has delta facts; the
         accumulated delta is rescanned each round (already-present heads are
         filtered out), which is simple and correct. *)
      let rec loop () =
        let fresh = ref [] in
        List.iter
          (fun (r : Rule.t) ->
            List.iteri
              (fun i lit ->
                match lit with
                | Rule.Pos a -> (
                    match Database.relation_opt d a.Atom.pred with
                    | None -> ()
                    | Some drel ->
                        if not (Relation.is_empty drel) then
                          derive_rule db
                            ~scan:(fun j -> if j = i then Some drel else None)
                            r fresh)
                | Rule.Neg _ | Rule.Cmp _ -> ())
              r.body)
          rules;
        let new_facts = List.filter (fun f -> Database.add db f) !fresh in
        if new_facts <> [] then begin
          List.iter (fun f -> ignore (Database.add d f)) new_facts;
          loop ()
        end
      in
      loop ())
    (Stratify.strata t.strat)

(* Answer a query (a body) against a materialized database. *)
let query db lits k =
  let lits = List.map (fun l -> l) lits in
  (* Order literals for evaluability via a throwaway rule. *)
  let dummy_head = Atom.make "$query" [] in
  let r = Rule.normalize (Rule.make dummy_head lits) in
  eval_lits db r.body Subst.empty k

let query_once db lits =
  let result = ref None in
  (try
     query db lits (fun s ->
         result := Some s;
         raise Exit)
   with Exit -> ());
  !result
