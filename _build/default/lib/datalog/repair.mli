(** Automatic generation of repairs for constraint violations, by derivation
    trees whose leaves are flipped (Moerkotte/Lockemann). *)

type action =
  | Add of Fact.t  (** add a base fact; may carry {!Term.Fresh} placeholders *)
  | Del of Fact.t

type t = action list
(** One repair: a set of base-fact changes whose execution removes (this
    instance of) the violation. *)

val action_fact : action -> Fact.t
val compare_action : action -> action -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val pp_action : action Fmt.t
val pp : t Fmt.t

val generate :
  ?max_repairs:int ->
  ?max_depth:int ->
  Theory.t ->
  Database.t ->
  Checker.violation ->
  t list
(** [generate theory materialized violation] proposes repairs, ranked by size
    (then by number of additions).  [materialized] must contain the computed
    intensional predicates for the current database state. *)
