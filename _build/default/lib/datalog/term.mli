(** Terms of the deductive database: variables and constants. *)

type const =
  | Sym of string  (** interned symbol: identifiers, user names *)
  | Int of int  (** machine integer: argument positions, counters *)
  | Fresh of string
      (** Skolem placeholder; appears only in generated repairs, standing for
          a value the repair executor must invent. *)

type t =
  | Var of string
  | Const of const

val sym : string -> t
(** [sym s] is the constant term [Const (Sym s)]. *)

val int : int -> t
(** [int i] is the constant term [Const (Int i)]. *)

val var : string -> t
(** [var v] is the variable term [Var v]. *)

val compare_const : const -> const -> int
val equal_const : const -> const -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

val is_var : t -> bool

val pp_const : const Fmt.t
val pp : t Fmt.t
val const_to_string : const -> string
val to_string : t -> string
