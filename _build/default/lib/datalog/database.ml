(* The extensional database: one relation per predicate, plus declared
   predicate signatures (arity and column names, used for arity checking and
   pretty printing). *)

type decl = { name : string; arity : int; columns : string list }

type t = {
  relations : (string, Relation.t) Hashtbl.t;
  decls : (string, decl) Hashtbl.t;
}

exception Arity_mismatch of string * int * int

let create () = { relations = Hashtbl.create 64; decls = Hashtbl.create 64 }

let declare db ~name ~columns =
  Hashtbl.replace db.decls name { name; arity = List.length columns; columns }

let declaration db name = Hashtbl.find_opt db.decls name
let declarations db = Hashtbl.fold (fun _ d acc -> d :: acc) db.decls []

let relation db pred =
  match Hashtbl.find_opt db.relations pred with
  | Some r -> r
  | None ->
      let r = Relation.create () in
      Hashtbl.replace db.relations pred r;
      r

let relation_opt db pred = Hashtbl.find_opt db.relations pred

let check_arity db (f : Fact.t) =
  match Hashtbl.find_opt db.decls f.pred with
  | None -> ()
  | Some d ->
      let n = Fact.arity f in
      if n <> d.arity then raise (Arity_mismatch (f.pred, d.arity, n))

let add db (f : Fact.t) =
  check_arity db f;
  Relation.add (relation db f.pred) f.args

let remove db (f : Fact.t) =
  match relation_opt db f.pred with
  | None -> false
  | Some r -> Relation.remove r f.args

let mem db (f : Fact.t) =
  match relation_opt db f.pred with
  | None -> false
  | Some r -> Relation.mem r f.args

let count db pred =
  match relation_opt db pred with None -> 0 | Some r -> Relation.cardinal r

let total db =
  Hashtbl.fold (fun _ r acc -> acc + Relation.cardinal r) db.relations 0

let iter_pred db pred f =
  match relation_opt db pred with
  | None -> ()
  | Some r -> Relation.iter f r

let facts db pred =
  match relation_opt db pred with
  | None -> []
  | Some r ->
      Relation.fold (fun tuple acc -> Fact.make_arr pred tuple :: acc) r []

let all_facts db =
  Hashtbl.fold
    (fun pred r acc ->
      Relation.fold (fun tuple acc -> Fact.make_arr pred tuple :: acc) r acc)
    db.relations []

let predicates db =
  Hashtbl.fold (fun pred _ acc -> pred :: acc) db.relations []

let copy db =
  let relations = Hashtbl.create (Hashtbl.length db.relations) in
  Hashtbl.iter (fun pred r -> Hashtbl.replace relations pred (Relation.copy r))
    db.relations;
  { relations; decls = Hashtbl.copy db.decls }

let clear_pred db pred =
  match relation_opt db pred with None -> () | Some r -> Relation.clear r
