(* Consistency checking: materialize the intensional predicates (including
   the compiled violation predicates) and read off the violation relations. *)

type violation = {
  constraint_name : string;
  viol_vars : string list;
  witness : Term.const array;
}

let witness_bindings v = List.combine v.viol_vars (Array.to_list v.witness)

let pp_violation ppf v =
  let pp_binding ppf (var, c) = Fmt.pf ppf "%s = %a" var Term.pp_const c in
  Fmt.pf ppf "violated %s [%a]" v.constraint_name
    Fmt.(list ~sep:(any ", ") pp_binding)
    (witness_bindings v)

(* Copy the EDB and materialize all intensional predicates into the copy. *)
let materialize ?(naive = false) (theory : Theory.t) (edb : Database.t) :
    Database.t =
  let db = Database.copy edb in
  let prepared = Theory.prepared theory in
  if naive then Eval.run_naive prepared db else Eval.run prepared db;
  db

(* Read violations off a materialized database. *)
let violations_of ?only (theory : Theory.t) (db : Database.t) :
    violation list =
  let selected =
    match only with None -> Theory.constraints theory | Some cs -> cs
  in
  List.concat_map
    (fun (c : Constraint_compile.compiled) ->
      Database.facts db c.viol_pred
      |> List.map (fun (f : Fact.t) ->
             {
               constraint_name = c.name;
               viol_vars = c.viol_vars;
               witness = f.args;
             }))
    selected

let check ?naive (theory : Theory.t) (edb : Database.t) : violation list =
  violations_of theory (materialize ?naive theory edb)

let is_consistent theory edb = check theory edb = []
