(** Compilation of first-order consistency constraints into violation
    queries (Lloyd–Topor transformation).

    A closed constraint [C] compiles to Datalog rules defining a violation
    predicate: [C] holds iff the violation relation is empty, and every tuple
    in it is a witness binding for the constraint's outer quantifier. *)

exception Error of string

type compiled = {
  name : string;
  formula : Formula.t;
  viol_pred : string;  (** ["viol$" ^ name] *)
  viol_vars : string list;  (** witness variable names, arity of [viol_pred] *)
  rules : Rule.t list;  (** auxiliary rules followed by violation rules *)
}

val viol_pred_of_name : string -> string
val is_viol_pred : string -> bool

val compile : name:string -> Formula.t -> compiled
(** @raise Error if the formula is open or not range-restricted. *)

val direct_deps : compiled -> string list
(** Predicates the compiled rules read, excluding generated ones. *)

val pp : compiled Fmt.t
