(** Derivation trees: proofs of derived facts over the materialized database,
    whose leaf flips generate repairs. *)

type tree =
  | Edb of Fact.t  (** a base fact, present *)
  | Absent of Fact.t  (** a satisfied negation: this fact is absent *)
  | Builtin of Rule.cmp * Term.const * Term.const
  | Derived of Fact.t * Rule.t * tree list

exception Cyclic

val fact_of : tree -> Fact.t option

val derive :
  is_idb:(string -> bool) ->
  rules:Rule.t list ->
  Database.t ->
  Fact.t ->
  tree option
(** One derivation tree for a fact against a materialized database, or [None]
    if the fact does not hold. *)

val leaves : tree -> tree list
val pp : tree Fmt.t
