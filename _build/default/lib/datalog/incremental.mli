(** Incremental consistency checking: affected-constraint cone evaluation and
    a maintained materialization updated by a stratified delete-and-rederive
    (DRed) algorithm. *)

type state

val check_affected :
  Theory.t -> Database.t -> delta:Delta.t -> Checker.violation list
(** Re-materialize from scratch, but only the rule cone of the constraints
    that transitively depend on a predicate changed by [delta], and report
    only their violations.  [delta] is assumed already applied to the
    database. *)

val init : ?copy:bool -> Theory.t -> Database.t -> state
(** Snapshot the extensional database and materialize it.  With [~copy:false]
    the caller's database is maintained in place (every change must then go
    through {!apply}).
    @raise Invalid_argument if a declared base predicate is also derived. *)

val apply : state -> Delta.t -> Delta.t
(** Apply a base-fact delta and maintain the materialization (DRed).
    Returns the effective delta (facts actually inserted/removed), suitable
    for {!Delta.invert}-based rollback. *)

val violations :
  ?only:Constraint_compile.compiled list -> state -> Checker.violation list
(** Current violations, read directly off the maintained materialization. *)

val edb : state -> Database.t
val materialized : state -> Database.t
