(** Stratification of a rule program (for stratified negation). *)

exception Not_stratifiable of string

type t

val compute : Rule.t list -> t
(** Group rules into strata such that negation only reaches strictly lower
    strata.  @raise Not_stratifiable on a negative dependency cycle. *)

val stratum : t -> string -> int option
(** Stratum of an intensional predicate, [None] for extensional ones. *)

val strata : t -> Rule.t list array
(** Rules grouped by stratum, ascending. *)

val is_idb : t -> string -> bool
(** Whether a predicate is defined by some rule of the program. *)
