(* Automatic generation of repairs for constraint violations.

   Following Moerkotte/Lockemann [19], a repair is obtained by building a
   derivation of the violation and flipping leaves: the violation query body
   is a conjunction of literals, and an implication can be made true by
   invalidating its premise (deleting a base fact supporting a positive
   literal) or by validating its conclusion (adding base facts that satisfy a
   negated — possibly derived — literal).  Satisfying a derived literal
   recursively solves one of its rules' bodies against the database, adding
   only the missing facts; values the repair must invent appear as
   [Term.Fresh] placeholders. *)

type action = Add of Fact.t | Del of Fact.t
type t = action list

let action_fact = function Add f | Del f -> f

let compare_action a b =
  match a, b with
  | Add x, Add y | Del x, Del y -> Fact.compare x y
  | Add _, Del _ -> -1
  | Del _, Add _ -> 1

let compare (a : t) (b : t) = List.compare compare_action a b
let equal a b = compare a b = 0

let pp_action ppf = function
  | Add f -> Fmt.pf ppf "+%a" Fact.pp f
  | Del f -> Fmt.pf ppf "-%a" Fact.pp f

let pp ppf (r : t) = Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any "; ") pp_action) r

(* Search budget: alternatives explored per literal and overall node cap. *)
let max_matches_per_literal = 8
let node_budget = 2000

type ctx = {
  theory : Theory.t;
  db : Database.t;  (* materialized *)
  rules : Rule.t list;  (* all rules, normalized *)
  is_idb : string -> bool;
  mutable budget : int;
}

let is_base ctx pred = Theory.predicate_declared ctx.theory pred

let spend ctx = ctx.budget <- ctx.budget - 1

(* Flip one leaf of a derivation of a present (derived) fact. *)
let refute_by_derivation ctx (f : Fact.t) : t list =
  match Derivation.derive ~is_idb:ctx.is_idb ~rules:ctx.rules ctx.db f with
  | None -> []
  | Some tree ->
      Derivation.leaves tree
      |> List.filter_map (function
           | Derivation.Edb g -> Some [ Del g ]
           | Derivation.Absent g when is_base ctx g.Fact.pred ->
               Some [ Add g ]
           | Derivation.Absent _ | Derivation.Builtin _ | Derivation.Derived _
             ->
               None)

(* Fresh-placeholder-aware comparison semantics: a placeholder stands for a
   brand-new value, distinct from every existing constant and from other
   placeholders with different names. *)
let cmp_holds op (a : Term.const) (b : Term.const) = Rule.eval_cmp op a b

let has_fresh (f : Fact.t) =
  Array.exists (function Term.Fresh _ -> true | Sym _ | Int _ -> false) f.args

(* All ways to make fact [g] true by adding base facts (and possibly deleting
   blockers of negated subgoals), depth-bounded. *)
let rec satisfy ctx depth (g : Fact.t) : t list =
  if is_base ctx g.Fact.pred then [ [ Add g ] ]
  else if depth <= 0 || ctx.budget <= 0 then []
  else begin
    spend ctx;
    List.concat_map
      (fun (r : Rule.t) ->
        if r.Rule.head.Atom.pred <> g.pred then []
        else
          match Subst.unify_args r.head.Atom.args g.args Subst.empty with
          | None -> []
          | Some s0 ->
              let results = ref [] in
              solve_body ctx depth s0 [] r.body (fun actions ->
                  results := actions :: !results);
              !results)
      ctx.rules
  end

(* Enumerate (bounded) ways to solve a body: positive literals either match
   existing facts or are added (recursively for derived predicates); negated
   literals must be absent, present blockers are deleted or refuted.

   Literal selection matters for repair quality: a positive literal that
   matches existing facts is solved first so that its bindings flow into the
   literals that must be added — this is what turns the paper's star-marked
   schema/object violation
   into [+Slot(clid4, fuelType, clid_string)] rather than inventing a new
   physical representation for the built-in string type. *)
and solve_body ctx depth s actions lits k =
  if ctx.budget <= 0 then ()
  else
    match lits with
    | [] -> k (List.rev actions)
    | _ :: _ ->
        let lit, rest = pick_literal ctx s lits in
        solve_literal ctx depth s actions lit rest k

(* Pick the next literal: ground negations/comparisons first (cheap pruning),
   then positive literals with at least one match, then remaining positive
   literals, then whatever is left. *)
and pick_literal ctx s lits =
  let bound v = Subst.mem v s in
  let ready = function
    | Rule.Neg a -> List.for_all bound (Atom.vars a)
    | Rule.Cmp (_, x, y) -> (
        match Subst.apply_term s x, Subst.apply_term s y with
        | Term.Const _, Term.Const _ -> true
        | (Term.Var _ | Term.Const _), _ -> false)
    | Rule.Pos _ -> false
  in
  let has_match = function
    | Rule.Pos a -> (
        match Database.relation_opt ctx.db a.Atom.pred with
        | None -> false
        | Some rel -> (
            try
              Relation.iter
                (fun tuple ->
                  match Subst.unify_args a.Atom.args tuple s with
                  | Some _ -> raise Exit
                  | None -> ())
                rel;
              false
            with Exit -> true))
    | Rule.Neg _ | Rule.Cmp _ -> false
  in
  let rec extract p acc = function
    | [] -> None
    | l :: rest when p l -> Some (l, List.rev_append acc rest)
    | l :: rest -> extract p (l :: acc) rest
  in
  let is_pos = function Rule.Pos _ -> true | Rule.Neg _ | Rule.Cmp _ -> false in
  match extract ready [] lits with
  | Some x -> x
  | None -> (
      match extract has_match [] lits with
      | Some x -> x
      | None -> (
          match extract is_pos [] lits with
          | Some x -> x
          | None -> (
              match lits with
              | l :: rest -> l, rest
              | [] -> assert false)))

and solve_literal ctx depth s actions lit rest k =
  match lit with
  | Rule.Pos a ->
        (* Alternative 1: match existing facts. *)
        let matches = ref 0 in
        (match Database.relation_opt ctx.db a.Atom.pred with
        | None -> ()
        | Some rel ->
            (try
               Relation.iter
                 (fun tuple ->
                   if !matches >= max_matches_per_literal then raise Exit;
                   match Subst.unify_args a.Atom.args tuple s with
                   | None -> ()
                   | Some s' ->
                       incr matches;
                       solve_body ctx depth s' actions rest k)
                 rel
             with Exit -> ()));
        (* Alternative 2: add the fact (missing parts only). *)
        spend ctx;
        let f = Subst.ground_atom s a in
        let s' =
          List.fold_left
            (fun s v ->
              if Subst.mem v s then s else Subst.bind v (Term.Fresh v) s)
            s (Atom.vars a)
        in
        if is_base ctx f.pred then
          (if not (Database.mem ctx.db f) then
             solve_body ctx depth s' (Add f :: actions) rest k)
        else
          List.iter
            (fun sub ->
              solve_body ctx depth s' (List.rev_append sub actions) rest k)
            (satisfy ctx (depth - 1) f)
  | Rule.Neg a ->
        let f = Subst.ground_atom s a in
        if has_fresh f || not (Database.mem ctx.db f) then
          solve_body ctx depth s actions rest k
        else if is_base ctx f.pred then
          solve_body ctx depth s (Del f :: actions) rest k
        else
          List.iter
            (fun sub -> solve_body ctx depth s (List.rev_append sub actions) rest k)
            (refute_by_derivation ctx f)
  | Rule.Cmp (op, x, y) -> (
        match Subst.apply_term s x, Subst.apply_term s y with
        | Term.Const a, Term.Const b ->
            if cmp_holds op a b then solve_body ctx depth s actions rest k
        | Term.Var v, Term.Const c when op = Rule.Eq ->
            solve_body ctx depth (Subst.bind v c s) actions rest k
        | Term.Const c, Term.Var v when op = Rule.Eq ->
            solve_body ctx depth (Subst.bind v c s) actions rest k
        | _, _ -> ())

let normalize_repair (r : t) : t = List.sort_uniq compare_action r

(* Generate repairs for one violation.  Each repair flips one literal of the
   violated query's ground body instance. *)
let generate ?(max_repairs = 32) ?(max_depth = 4) (theory : Theory.t)
    (materialized : Database.t) (violation : Checker.violation) : t list =
  match Theory.find_constraint theory violation.constraint_name with
  | None -> []
  | Some compiled ->
      let prepared = Theory.prepared theory in
      let ctx =
        {
          theory;
          db = materialized;
          rules = Eval.rules prepared;
          is_idb = Eval.is_idb prepared;
          budget = node_budget;
        }
      in
      let viol_rules =
        List.filter
          (fun (r : Rule.t) ->
            r.Rule.head.Atom.pred = compiled.viol_pred)
          ctx.rules
      in
      let repairs = ref [] in
      let push r =
        let r = normalize_repair r in
        if r <> [] && not (List.exists (equal r) !repairs) then
          repairs := r :: !repairs
      in
      List.iter
        (fun (r : Rule.t) ->
          match Subst.unify_args r.head.Atom.args violation.witness Subst.empty with
          | None -> ()
          | Some s0 ->
              (* One ground instance of the violated body suffices: the
                 protocol re-checks after a repair is applied. *)
              let instance = ref None in
              (try
                 Eval.eval_lits ctx.db r.body s0 (fun s ->
                     instance := Some s;
                     raise Exit)
               with Exit -> ());
              (match !instance with
              | None -> ()
              | Some s ->
                  List.iter
                    (fun lit ->
                      match lit with
                      | Rule.Pos a ->
                          let f = Subst.ground_atom s a in
                          if is_base ctx f.pred then push [ Del f ]
                          else
                            List.iter push (refute_by_derivation ctx f)
                      | Rule.Neg a ->
                          let f = Subst.ground_atom s a in
                          if is_base ctx f.pred then push [ Add f ]
                          else List.iter push (satisfy ctx max_depth f)
                      | Rule.Cmp _ -> ())
                    r.body))
        viol_rules;
      let ranked =
        List.sort
          (fun a b ->
            let adds r =
              List.length (List.filter (function Add _ -> true | Del _ -> false) r)
            in
            let c = Int.compare (List.length a) (List.length b) in
            if c <> 0 then c
            else
              let c = Int.compare (adds a) (adds b) in
              if c <> 0 then c else compare a b)
          (List.rev !repairs)
      in
      List.filteri (fun i _ -> i < max_repairs) ranked
