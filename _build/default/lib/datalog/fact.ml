(* Ground facts: a predicate name applied to a tuple of constants. *)

type t = { pred : string; args : Term.const array }

let make pred args = { pred; args = Array.of_list args }
let make_arr pred args = { pred; args }

let arity f = Array.length f.args

let compare a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c
  else
    let la = Array.length a.args and lb = Array.length b.args in
    let c = Int.compare la lb in
    if c <> 0 then c
    else
      let rec go i =
        if i >= la then 0
        else
          let c = Term.compare_const a.args.(i) b.args.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

let equal a b = compare a b = 0

let is_ground f =
  Array.for_all (function Term.Fresh _ -> false | Sym _ | Int _ -> true) f.args

let pp ppf f =
  Fmt.pf ppf "%s(%a)" f.pred
    Fmt.(array ~sep:(any ", ") Term.pp_const)
    f.args

let to_string f = Fmt.str "%a" pp f
