(** Atoms: a predicate applied to terms (variables or constants). *)

type t = { pred : string; args : Term.t array }

val make : string -> Term.t list -> t
val make_arr : string -> Term.t array -> t
val arity : t -> int

val vars : t -> string list
(** Variables occurring in the atom, in argument order, with duplicates. *)

val is_ground : t -> bool

val to_fact : t -> Fact.t
(** @raise Invalid_argument if the atom contains a variable. *)

val of_fact : Fact.t -> t
val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string
