(** Change sets on the extensional database: the [+]/[-] modify interface of
    the Consistency Control. *)

type t = { additions : Fact.t list; deletions : Fact.t list }

val empty : t
val add : Fact.t -> t -> t
val del : Fact.t -> t -> t
val of_lists : additions:Fact.t list -> deletions:Fact.t list -> t
val is_empty : t -> bool
val union : t -> t -> t
val size : t -> int
val changed_preds : t -> string list

val apply : Database.t -> t -> t
(** Apply to a database; returns the {e effective} delta (only facts actually
    inserted or removed), suitable for incremental maintenance and rollback.
    Deletions are applied before additions. *)

val invert : t -> t
(** The delta that undoes an effective delta. *)

val pp : t Fmt.t
