(** Plain-text table rendering for the paper's extension tables. *)

module Table : sig
  type t

  val make : ?header:string list -> string list list -> t
  val render : t -> string
end

val extension_table : Database.t -> string list -> string
(** Figure-2-style rendering: facts of each predicate grouped, the predicate
    name shown on the first row of its group only. *)

val pp_rules : Rule.t list Fmt.t
