(** Concrete syntax for the deductive layer: constraints (first-order
    formulas), rules, and queries as text.

    Variables are capitalized (or start with '_'); lower-case and quoted
    identifiers are symbol constants; integers are integer constants.  An
    identifier directly followed by '(' is a predicate regardless of case
    (GOM predicate names are capitalized), so a capitalized symbol constant
    must be quoted ('CarSchema').
    Formulas: [forall X, Y. p(X) /\ q(X, Y) -> exists Z. r(Y, Z)] with
    [and]/[or]/[not] as word alternatives and [%] line comments.
    Rules: [t(X, Z) :- e(X, Y), t(Y, Z).]  Queries: [t(a, X), not q(X)?] *)

exception Error of string

val formula : string -> Formula.t
(** @raise Error on syntax errors. *)

val rule : string -> Rule.t
val query : string -> Rule.literal list
