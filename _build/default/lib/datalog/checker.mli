(** Consistency checking: materialize the intensional predicates (including
    compiled violation predicates) and read off the violation relations. *)

type violation = {
  constraint_name : string;
  viol_vars : string list;
  witness : Term.const array;
}

val witness_bindings : violation -> (string * Term.const) list
val pp_violation : violation Fmt.t

val materialize : ?naive:bool -> Theory.t -> Database.t -> Database.t
(** Copy the extensional database and compute all intensional predicates into
    the copy (semi-naive by default). *)

val violations_of :
  ?only:Constraint_compile.compiled list ->
  Theory.t ->
  Database.t ->
  violation list
(** Read violations off a materialized database, optionally restricted to a
    subset of constraints. *)

val check : ?naive:bool -> Theory.t -> Database.t -> violation list
val is_consistent : Theory.t -> Database.t -> bool
