(* Change sets on the extensional database: the paper's [+]/[-] interface of
   the Consistency Control ("the interface to the Database Model then
   consists of the operations add (+) and delete (-)"). *)

type t = { additions : Fact.t list; deletions : Fact.t list }

let empty = { additions = []; deletions = [] }

let add f d = { d with additions = f :: d.additions }
let del f d = { d with deletions = f :: d.deletions }
let of_lists ~additions ~deletions = { additions; deletions }

let is_empty d = d.additions = [] && d.deletions = []

let union a b =
  {
    additions = a.additions @ b.additions;
    deletions = a.deletions @ b.deletions;
  }

let size d = List.length d.additions + List.length d.deletions

let changed_preds d =
  List.map (fun f -> f.Fact.pred) (d.additions @ d.deletions)
  |> List.sort_uniq String.compare

(* Apply to a database, returning the effective delta: only facts actually
   inserted or removed.  Deletions are applied first so that a fact both
   deleted and re-added nets out as present.  All additions are
   arity-checked up front, so a signature mismatch raises before anything
   is mutated. *)
let apply db d =
  List.iter (Database.check_arity db) d.additions;
  let deletions = List.filter (fun f -> Database.remove db f) d.deletions in
  let additions = List.filter (fun f -> Database.add db f) d.additions in
  { additions; deletions }

(* Invert: undoing [apply db d] given the effective delta it returned. *)
let invert d = { additions = d.deletions; deletions = d.additions }

let pp ppf d =
  let plus ppf f = Fmt.pf ppf "+%a" Fact.pp f in
  let minus ppf f = Fmt.pf ppf "-%a" Fact.pp f in
  Fmt.pf ppf "@[<v>%a%a%a@]"
    Fmt.(list ~sep:cut minus)
    d.deletions
    Fmt.(if d.deletions <> [] && d.additions <> [] then cut else nop)
    ()
    Fmt.(list ~sep:cut plus)
    d.additions
