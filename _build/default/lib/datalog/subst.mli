(** Substitutions binding variables to constants during evaluation. *)

type t

val empty : t
val find : string -> t -> Term.const option
val bind : string -> Term.const -> t -> t
val mem : string -> t -> bool
val bindings : t -> (string * Term.const) list

val unify_term : Term.t -> Term.const -> t -> t option
val unify_args : Term.t array -> Term.const array -> t -> t option

val apply_term : t -> Term.t -> Term.t
val apply_atom : t -> Atom.t -> Atom.t

val ground_atom : t -> Atom.t -> Fact.t
(** Ground an atom into a fact; unbound variables become {!Term.Fresh}
    placeholders (used when suggesting repairs with invented values). *)

val pp : t Fmt.t
