(* Terms of the deductive database: variables and constants.

   Constants cover interned symbols (identifiers such as [tid_1], user names
   such as ["Car"]), machine integers (argument positions), and [Fresh]
   placeholders.  A [Fresh] constant never lives in a database extension: it
   only appears inside generated repairs, standing for a value the repair
   executor must invent (a Skolem constant such as a new slot identifier). *)

type const =
  | Sym of string
  | Int of int
  | Fresh of string

type t =
  | Var of string
  | Const of const

let sym s = Const (Sym s)
let int i = Const (Int i)
let var v = Var v

let compare_const (a : const) (b : const) =
  match a, b with
  | Sym x, Sym y -> String.compare x y
  | Sym _, (Int _ | Fresh _) -> -1
  | Int _, Sym _ -> 1
  | Int x, Int y -> Int.compare x y
  | Int _, Fresh _ -> -1
  | Fresh x, Fresh y -> String.compare x y
  | Fresh _, (Sym _ | Int _) -> 1

let equal_const a b = compare_const a b = 0

let compare (a : t) (b : t) =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1
  | Const x, Const y -> compare_const x y

let equal a b = compare a b = 0

let is_var = function Var _ -> true | Const _ -> false

let pp_const ppf = function
  | Sym s -> Fmt.string ppf s
  | Int i -> Fmt.int ppf i
  | Fresh s -> Fmt.pf ppf "?%s" s

let pp ppf = function
  | Var v -> Fmt.pf ppf "%s" v
  | Const c -> pp_const ppf c

let const_to_string c = Fmt.str "%a" pp_const c
let to_string t = Fmt.str "%a" pp t
