(* Compilation of first-order consistency constraints into violation queries
   (the approach of Moerkotte/Rösch, "On the compilation of consistency
   constraints", here realized as a Lloyd-Topor transformation).

   A constraint C must be a closed formula.  Its negation is brought to
   negation normal form; the top-level existential prefix becomes the witness
   of the violation; conjunction/disjunction structure becomes rule bodies;
   an inner universal quantifier becomes a negated auxiliary predicate whose
   rules are compiled recursively.  The result is a set of Datalog rules
   defining [viol$name(witness)]: the constraint holds iff that relation is
   empty, and each tuple in it is a witness of a violation. *)

exception Error of string

type compiled = {
  name : string;
  formula : Formula.t;
  viol_pred : string;
  viol_vars : string list;
  rules : Rule.t list;
}

let viol_prefix = "viol$"
let viol_pred_of_name name = viol_prefix ^ name
let is_viol_pred p = String.length p > 5 && String.sub p 0 5 = viol_prefix

(* Variables bound by a body: positive-atom variables, closed under
   equality assignments. *)
let bound_vars_of_body (body : Rule.literal list) : string list =
  let bound = ref [] in
  let add v = if not (List.mem v !bound) then bound := v :: !bound in
  List.iter
    (function
      | Rule.Pos a -> List.iter add (Atom.vars a)
      | Rule.Neg _ | Rule.Cmp _ -> ())
    body;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (function
        | Rule.Cmp (Rule.Eq, Term.Var v, t) | Rule.Cmp (Rule.Eq, t, Term.Var v)
          ->
            let t_bound =
              match t with
              | Term.Const _ -> true
              | Term.Var u -> List.mem u !bound
            in
            if t_bound && not (List.mem v !bound) then begin
              add v;
              changed := true
            end
        | Rule.Pos _ | Rule.Neg _ | Rule.Cmp _ -> ())
      body
  done;
  !bound

let compile ~name (formula : Formula.t) : compiled =
  if not (Formula.is_closed formula) then
    raise
      (Error
         (Fmt.str "constraint %s is not closed (free: %a)" name
            Fmt.(list ~sep:comma string)
            (Formula.free_vars formula)));
  let aux_count = ref 0 in
  let aux_rules = ref [] in
  let g =
    Formula.miniscope
      (Formula.nnf (Formula.Not (Formula.standardize_apart formula)))
  in
  (* Positive literals a formula contributes unconditionally (used as guards
     for sibling universals, keeping auxiliary rules range-restricted). *)
  let rec simple_guards (f : Formula.t) : Rule.literal list =
    match f with
    | Formula.Atom a -> [ Rule.Pos a ]
    | Formula.And gs -> List.concat_map simple_guards gs
    | Formula.Exists (_, g) -> simple_guards g
    | Formula.True | Formula.False | Formula.Not _ | Formula.Cmp _
    | Formula.Or _ | Formula.Implies _ | Formula.Iff _ | Formula.Forall _ ->
        []
  in
  (* Compile an NNF formula into a disjunction of rule bodies; inner
     universals become negated auxiliary predicates.  [ctx] carries the
     positive guard literals of the enclosing conjunction: an auxiliary rule
     whose own body does not bind every head variable is completed with the
     guards, which is sound because the auxiliary predicate is only consulted
     under those guards. *)
  let rec bodies ctx (f : Formula.t) : Rule.literal list list =
    match f with
    | Formula.True -> [ [] ]
    | Formula.False -> []
    | Formula.Atom a -> [ [ Rule.Pos a ] ]
    | Formula.Not (Formula.Atom a) -> [ [ Rule.Neg a ] ]
    | Formula.Cmp (op, x, y) -> [ [ Rule.Cmp (op, x, y) ] ]
    | Formula.And gs ->
        let guards = List.map simple_guards gs in
        let compiled =
          List.mapi
            (fun i g ->
              let sibling_guards =
                List.concat (List.filteri (fun j _ -> j <> i) guards)
              in
              bodies (ctx @ sibling_guards) g)
            gs
        in
        List.fold_left
          (fun acc gbodies ->
            List.concat_map (fun b -> List.map (fun b' -> b @ b') gbodies) acc)
          [ [] ] compiled
    | Formula.Or gs -> List.concat_map (bodies ctx) gs
    | Formula.Exists (_, g) -> bodies ctx g
    | Formula.Forall (vs, g) ->
        incr aux_count;
        let aux_pred = Fmt.str "aux$%s$%d" name !aux_count in
        let free = Formula.free_vars (Formula.Forall (vs, g)) in
        let head = Atom.make aux_pred (List.map Term.var free) in
        let sub_bodies = bodies ctx (Formula.nnf (Formula.Not g)) in
        List.iter
          (fun b ->
            let bound = bound_vars_of_body b in
            let body =
              if List.for_all (fun v -> List.mem v bound) free then b
              else
                (* Complete with enclosing guards to bind the head. *)
                List.filter (fun l -> not (List.mem l b)) ctx @ b
            in
            aux_rules := Rule.make head body :: !aux_rules)
          sub_bodies;
        [ [ Rule.Neg head ] ]
    | Formula.Not _ | Formula.Implies _ | Formula.Iff _ ->
        raise (Error (Fmt.str "constraint %s: internal NNF failure" name))
  in
  (* The top-level existential prefix is the witness of a violation. *)
  let rec strip_exists acc = function
    | Formula.Exists (vs, g) -> strip_exists (acc @ vs) g
    | g -> acc, g
  in
  let witness, matrix = strip_exists [] g in
  let disjuncts = bodies [] matrix in
  if disjuncts = [] then
    (* Negation is unsatisfiable: the constraint is a tautology. *)
    {
      name;
      formula;
      viol_pred = viol_pred_of_name name;
      viol_vars = [];
      rules = [];
    }
  else begin
    let viol_vars =
      List.filter
        (fun v ->
          List.for_all (fun b -> List.mem v (bound_vars_of_body b)) disjuncts)
        witness
    in
    let viol_pred = viol_pred_of_name name in
    let head = Atom.make viol_pred (List.map Term.var viol_vars) in
    let viol_rules = List.map (fun b -> Rule.make head b) disjuncts in
    let rules = List.rev !aux_rules @ viol_rules in
    (* Validate range restriction now, with a constraint-level error. *)
    (try List.iter (fun r -> ignore (Rule.normalize r)) rules
     with Rule.Unsafe msg ->
       raise
         (Error (Fmt.str "constraint %s is not range-restricted: %s" name msg)));
    { name; formula; viol_pred; viol_vars; rules }
  end

(* Predicates a compiled constraint reads, excluding its own generated
   predicates. *)
let direct_deps (c : compiled) : string list =
  let own p = is_viol_pred p || String.length p > 4 && String.sub p 0 4 = "aux$" in
  List.concat_map Rule.body_preds c.rules
  |> List.filter (fun p -> not (own p))
  |> List.sort_uniq String.compare

let pp ppf c =
  Fmt.pf ppf "@[<v>constraint %s:@,  %a@,compiled to:@,  %a@]" c.name
    Formula.pp c.formula
    Fmt.(list ~sep:(any "@,  ") Rule.pp)
    c.rules
