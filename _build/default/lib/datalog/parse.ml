(* A small concrete syntax for the deductive layer, so constraints, rules
   and queries can be stated as text (the user-facing side of "schema
   consistency can be stated declaratively"):

     formula  ::=  'forall' vars '.' formula
                |  'exists' vars '.' formula
                |  implies
     implies  ::=  or ( ('->' | '=>') implies )?      right associative
     or       ::=  and ( ('\/' | 'or') and )*
     and      ::=  unary ( ('/\' | 'and') unary )*
     unary    ::=  ('not' | '~') unary | 'true' | 'false' | '(' formula ')'
                |  atom | term cmp term
     atom     ::=  IDENT '(' term, ... ')'
     term     ::=  VARIABLE (capitalized) | 'symbol' | "symbol" | INT
                |  lowercase-ident (a symbol constant)
     cmp      ::=  '=' | '!=' | '<' | '<=' | '>' | '>='

     rule     ::=  atom ':-' literal, ... '.'   |   atom '.'
     literal  ::=  atom | 'not' atom | term cmp term
     query    ::=  literal, ... ('.' | '?')?

   Variables start with an upper-case letter or '_'; everything else is a
   symbol constant.  Quoted symbols allow arbitrary contents. *)

exception Error of string

type token =
  | TIdent of string  (* lower-case: predicate or symbol *)
  | TVar of string  (* upper-case *)
  | TQuoted of string
  | TInt of int
  | TLparen
  | TRparen
  | TComma
  | TDot
  | TTurnstile  (* :- *)
  | TArrow  (* -> or => *)
  | TIff  (* <-> or <=> *)
  | TAnd
  | TOr
  | TNot
  | TForall
  | TExists
  | TTrue
  | TFalse
  | TCmp of Rule.cmp
  | TQuestion
  | TEOF

let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident c = is_alpha c || is_digit c || c = '$' || c = '\''

let tokenize (src : string) : token list =
  let n = String.length src in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '%' then begin
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      push (TInt (int_of_string (String.sub src start (!i - start))))
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      match String.lowercase_ascii word with
      | "forall" -> push TForall
      | "exists" -> push TExists
      | "and" when word = "and" -> push TAnd
      | "or" when word = "or" -> push TOr
      | "not" when word = "not" -> push TNot
      | "true" when word = "true" -> push TTrue
      | "false" when word = "false" -> push TFalse
      | _ ->
          if c >= 'A' && c <= 'Z' || c = '_' then push (TVar word)
          else push (TIdent word)
    end
    else if c = '\'' || c = '"' then begin
      let quote = c in
      incr i;
      let buf = Buffer.create 8 in
      while !i < n && src.[!i] <> quote do
        Buffer.add_char buf src.[!i];
        incr i
      done;
      if !i >= n then raise (Error "unterminated quoted symbol");
      incr i;
      push (TQuoted (Buffer.contents buf))
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      let three = if !i + 2 < n then String.sub src !i 3 else "" in
      if three = "<->" || three = "<=>" then begin
        push TIff;
        i := !i + 3
      end
      else if two = ":-" then begin
        push TTurnstile;
        i := !i + 2
      end
      else if two = "->" || two = "=>" then begin
        push TArrow;
        i := !i + 2
      end
      else if two = "/\\" then begin
        push TAnd;
        i := !i + 2
      end
      else if two = "\\/" then begin
        push TOr;
        i := !i + 2
      end
      else if two = "!=" || two = "<>" then begin
        push (TCmp Rule.Ne);
        i := !i + 2
      end
      else if two = "<=" then begin
        push (TCmp Rule.Le);
        i := !i + 2
      end
      else if two = ">=" then begin
        push (TCmp Rule.Ge);
        i := !i + 2
      end
      else
        match c with
        | '(' ->
            push TLparen;
            incr i
        | ')' ->
            push TRparen;
            incr i
        | ',' ->
            push TComma;
            incr i
        | '.' ->
            push TDot;
            incr i
        | '?' ->
            push TQuestion;
            incr i
        | '~' ->
            push TNot;
            incr i
        | '=' ->
            push (TCmp Rule.Eq);
            incr i
        | '<' ->
            push (TCmp Rule.Lt);
            incr i
        | '>' ->
            push (TCmp Rule.Gt);
            incr i
        | _ -> raise (Error (Printf.sprintf "unexpected character %C" c))
    end
  done;
  List.rev (TEOF :: !toks)

(* ------------------------------------------------------------------ *)

type state = { mutable toks : token list }

let peek st = match st.toks with t :: _ -> t | [] -> TEOF

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st t what =
  if peek st = t then advance st
  else raise (Error ("expected " ^ what))

let parse_term st : Term.t =
  match peek st with
  | TVar v ->
      advance st;
      Term.var v
  | TIdent s ->
      advance st;
      Term.sym s
  | TQuoted s ->
      advance st;
      Term.sym s
  | TInt i ->
      advance st;
      Term.int i
  | _ -> raise (Error "expected a term")

let parse_terms st =
  expect st TLparen "'('";
  if peek st = TRparen then begin
    advance st;
    []
  end
  else begin
    let rec go acc =
      let t = parse_term st in
      if peek st = TComma then begin
        advance st;
        go (t :: acc)
      end
      else begin
        expect st TRparen "')'";
        List.rev (t :: acc)
      end
    in
    go []
  end

let parse_vars st =
  let rec go acc =
    match peek st with
    | TVar v ->
        advance st;
        if peek st = TComma then begin
          advance st;
          go (v :: acc)
        end
        else List.rev (v :: acc)
    | _ -> raise (Error "expected a variable")
  in
  go []

(* An identifier directly followed by '(' is a predicate regardless of its
   case (the GOM predicate names are capitalized); otherwise capitalized
   identifiers are variables.  Capitalized symbol constants must be quoted. *)
let starts_atom st =
  match st.toks with
  | (TIdent _ | TVar _) :: TLparen :: _ -> true
  | _ -> false

(* atom or comparison *)
let parse_atomic st : Formula.t =
  if starts_atom st then begin
    let p =
      match peek st with
      | TIdent p | TVar p ->
          advance st;
          p
      | _ -> assert false
    in
    Formula.Atom (Atom.make p (parse_terms st))
  end
  else
    match peek st with
    | TIdent _ | TVar _ | TInt _ | TQuoted _ -> (
        let x = parse_term st in
        match peek st with
        | TCmp op ->
            advance st;
            Formula.Cmp (op, x, parse_term st)
        | _ -> raise (Error "expected a comparison operator"))
    | _ -> raise (Error "expected an atom or comparison")

let rec parse_formula st : Formula.t =
  match peek st with
  | TForall ->
      advance st;
      let vs = parse_vars st in
      if peek st = TDot then advance st;
      Formula.Forall (vs, parse_formula st)
  | TExists ->
      advance st;
      let vs = parse_vars st in
      if peek st = TDot then advance st;
      Formula.Exists (vs, parse_formula st)
  | _ -> parse_implies st

and parse_implies st : Formula.t =
  let lhs = parse_or st in
  match peek st with
  | TArrow ->
      advance st;
      Formula.Implies (lhs, parse_implies st)
  | TIff ->
      advance st;
      Formula.Iff (lhs, parse_implies st)
  | _ -> lhs

and parse_or st : Formula.t =
  let lhs = parse_and st in
  let rec go acc =
    if peek st = TOr then begin
      advance st;
      go (parse_and st :: acc)
    end
    else
      match acc with [ f ] -> f | fs -> Formula.Or (List.rev fs)
  in
  go [ lhs ]

and parse_and st : Formula.t =
  let lhs = parse_unary st in
  let rec go acc =
    if peek st = TAnd then begin
      advance st;
      go (parse_unary st :: acc)
    end
    else
      match acc with [ f ] -> f | fs -> Formula.And (List.rev fs)
  in
  go [ lhs ]

and parse_unary st : Formula.t =
  match peek st with
  | TNot ->
      advance st;
      Formula.Not (parse_unary st)
  | TTrue ->
      advance st;
      Formula.True
  | TFalse ->
      advance st;
      Formula.False
  | TLparen ->
      advance st;
      let f = parse_formula st in
      expect st TRparen "')'";
      f
  | TForall | TExists -> parse_formula st
  | _ -> parse_atomic st

let formula (src : string) : Formula.t =
  let st = { toks = tokenize src } in
  let f = parse_formula st in
  if peek st = TDot then advance st;
  if peek st <> TEOF then raise (Error "trailing input after formula");
  f

(* ------------------------------------------------------------------ *)

let parse_literal st : Rule.literal =
  match peek st with
  | TNot ->
      advance st;
      (match parse_atomic st with
      | Formula.Atom a -> Rule.Neg a
      | _ -> raise (Error "'not' applies to an atom"))
  | _ -> (
      match parse_atomic st with
      | Formula.Atom a -> Rule.Pos a
      | Formula.Cmp (op, x, y) -> Rule.Cmp (op, x, y)
      | _ -> raise (Error "expected a literal"))

let parse_body st =
  let rec go acc =
    let l = parse_literal st in
    if peek st = TComma then begin
      advance st;
      go (l :: acc)
    end
    else List.rev (l :: acc)
  in
  go []

let rule (src : string) : Rule.t =
  let st = { toks = tokenize src } in
  let head =
    match parse_atomic st with
    | Formula.Atom a -> a
    | _ -> raise (Error "a rule head must be an atom")
  in
  let body =
    if peek st = TTurnstile then begin
      advance st;
      parse_body st
    end
    else []
  in
  if peek st = TDot then advance st;
  if peek st <> TEOF then raise (Error "trailing input after rule");
  Rule.make head body

let query (src : string) : Rule.literal list =
  let st = { toks = tokenize src } in
  let body = parse_body st in
  (match peek st with
  | TDot | TQuestion -> advance st
  | _ -> ());
  if peek st <> TEOF then raise (Error "trailing input after query");
  body
