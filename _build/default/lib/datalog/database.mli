(** The extensional database: one relation per predicate, plus declared
    predicate signatures (used for arity checking and pretty printing). *)

type decl = { name : string; arity : int; columns : string list }

type t

exception Arity_mismatch of string * int * int
(** [Arity_mismatch (pred, expected, got)] *)

val create : unit -> t

val declare : t -> name:string -> columns:string list -> unit
(** Declare a predicate's signature; column names are used by the pretty
    printer and the arity is enforced on every subsequent {!add}. *)

val declaration : t -> string -> decl option
val declarations : t -> decl list

val relation : t -> string -> Relation.t
(** The relation for a predicate, created empty on first access. *)

val relation_opt : t -> string -> Relation.t option

val check_arity : t -> Fact.t -> unit
(** @raise Arity_mismatch if the fact disagrees with a declared signature. *)

val add : t -> Fact.t -> bool
(** [add db f] inserts [f]; returns [true] iff it was not present.
    @raise Arity_mismatch if [f] disagrees with the declared signature. *)

val remove : t -> Fact.t -> bool
val mem : t -> Fact.t -> bool
val count : t -> string -> int
val total : t -> int
val iter_pred : t -> string -> (Term.const array -> unit) -> unit
val facts : t -> string -> Fact.t list
val all_facts : t -> Fact.t list
val predicates : t -> string list
val copy : t -> t
val clear_pred : t -> string -> unit
