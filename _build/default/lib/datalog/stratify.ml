(* Stratification of a rule program.

   Assigns each intensional predicate a stratum such that a predicate depends
   positively only on predicates of the same or lower strata and negatively
   only on strictly lower strata.  Programs with a negative dependency cycle
   are rejected. *)

exception Not_stratifiable of string

type t = {
  strata : Rule.t list array;  (* rules grouped by stratum, ascending *)
  stratum_of : (string, int) Hashtbl.t;  (* intensional predicates only *)
}

let idb_preds rules =
  let tbl = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace tbl r.Rule.head.Atom.pred ()) rules;
  tbl

(* Iterative relaxation: raise strata until a fixpoint.  If a predicate's
   stratum exceeds the number of intensional predicates, there is a cycle
   through negation. *)
let compute (rules : Rule.t list) : t =
  let idb = idb_preds rules in
  let n_preds = Hashtbl.length idb in
  let stratum_of = Hashtbl.create 16 in
  Hashtbl.iter (fun p () -> Hashtbl.replace stratum_of p 0) idb;
  let get p = match Hashtbl.find_opt stratum_of p with Some s -> s | None -> 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        let hp = r.Rule.head.Atom.pred in
        let raise_to s =
          if s > get hp then begin
            if s > n_preds then
              raise
                (Not_stratifiable
                   (Fmt.str "negative cycle through predicate %s" hp));
            Hashtbl.replace stratum_of hp s;
            changed := true
          end
        in
        List.iter
          (fun p -> if Hashtbl.mem idb p then raise_to (get p))
          (Rule.pos_preds r);
        List.iter
          (fun p -> if Hashtbl.mem idb p then raise_to (get p + 1))
          (Rule.neg_preds r))
      rules
  done;
  let max_stratum =
    Hashtbl.fold (fun _ s acc -> max s acc) stratum_of 0
  in
  let strata = Array.make (max_stratum + 1) [] in
  List.iter
    (fun r ->
      let s = get r.Rule.head.Atom.pred in
      strata.(s) <- r :: strata.(s))
    rules;
  Array.iteri (fun i rs -> strata.(i) <- List.rev rs) strata;
  { strata; stratum_of }

let stratum t pred = Hashtbl.find_opt t.stratum_of pred
let strata t = t.strata
let is_idb t pred = Hashtbl.mem t.stratum_of pred
