(** Ground facts: a predicate name applied to a tuple of constants. *)

type t = { pred : string; args : Term.const array }

val make : string -> Term.const list -> t
val make_arr : string -> Term.const array -> t
val arity : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool

val is_ground : t -> bool
(** [is_ground f] is [false] when [f] contains a {!Term.Fresh} placeholder
    (such a fact may appear in a repair but never in a database). *)

val pp : t Fmt.t
val to_string : t -> string
