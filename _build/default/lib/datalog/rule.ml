(* Rules (Horn clauses with stratified negation and comparison builtins).

   A rule [head :- l1, ..., ln] derives [head] whenever all body literals are
   satisfied.  Literals are positive atoms, negated atoms (negation as
   failure, stratified), or comparisons between terms. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type literal =
  | Pos of Atom.t
  | Neg of Atom.t
  | Cmp of cmp * Term.t * Term.t

type t = { head : Atom.t; body : literal list }

exception Unsafe of string

let make head body = { head; body }

let literal_vars = function
  | Pos a | Neg a -> Atom.vars a
  | Cmp (_, x, y) ->
      List.filter_map
        (function Term.Var v -> Some v | Const _ -> None)
        [ x; y ]

let eval_cmp (op : cmp) (a : Term.const) (b : Term.const) =
  let c = Term.compare_const a b in
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let negate_cmp = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

(* A literal is evaluable given a set of bound variables:
   - a positive atom always is (it binds its own variables);
   - a negated atom or a comparison requires all its variables bound, except
     that [Cmp (Eq, Var v, t)] with [t] bound acts as a binding assignment. *)
let evaluable bound = function
  | Pos _ -> true
  | Neg a -> List.for_all (fun v -> List.mem v bound) (Atom.vars a)
  | Cmp (Eq, Term.Var v, t) when not (List.mem v bound) ->
      List.for_all (fun u -> List.mem u bound) (literal_vars (Cmp (Eq, t, t)))
  | Cmp (Eq, t, Term.Var v) when not (List.mem v bound) ->
      List.for_all (fun u -> List.mem u bound) (literal_vars (Cmp (Eq, t, t)))
  | Cmp (_, x, y) ->
      List.for_all
        (fun v -> List.mem v bound)
        (literal_vars (Cmp (Eq, x, y)))

let binds bound lit =
  match lit with
  | Pos a -> Atom.vars a @ bound
  | Neg _ -> bound
  | Cmp (Eq, Term.Var v, _) | Cmp (Eq, _, Term.Var v) -> v :: bound
  | Cmp (_, _, _) -> bound

(* Reorder the body so that every literal is evaluable at its position
   (positive atoms bind variables; negations and comparisons wait until their
   variables are bound).  Raises [Unsafe] when no such order exists or when a
   head variable is never bound — this doubles as the safety / range
   restriction check on rules. *)
let normalize (r : t) : t =
  let rec pick bound acc = function
    | [] -> List.rev acc, bound
    | pending ->
        let rec split seen = function
          | [] -> None
          | l :: rest ->
              if evaluable bound l then Some (l, List.rev_append seen rest)
              else split (l :: seen) rest
        in
        (match split [] pending with
        | None ->
            raise
              (Unsafe
                 (Fmt.str "rule for %s: cannot order body literals %a"
                    r.head.Atom.pred
                    Fmt.(list ~sep:comma (fun ppf l ->
                             Fmt.string ppf (String.concat "," (literal_vars l))))
                    pending))
        | Some (l, rest) -> pick (binds bound l) (l :: acc) rest)
  in
  let body, bound = pick [] [] r.body in
  let head_vars = Atom.vars r.head in
  List.iter
    (fun v ->
      if not (List.mem v bound) then
        raise
          (Unsafe
             (Fmt.str "rule for %s: head variable %s not bound by body"
                r.head.Atom.pred v)))
    head_vars;
  { r with body }

let body_preds r =
  List.filter_map
    (function Pos a | Neg a -> Some a.Atom.pred | Cmp _ -> None)
    r.body

let pos_preds r =
  List.filter_map (function Pos a -> Some a.Atom.pred | Neg _ | Cmp _ -> None) r.body

let neg_preds r =
  List.filter_map (function Neg a -> Some a.Atom.pred | Pos _ | Cmp _ -> None) r.body

let pp_cmp ppf op =
  Fmt.string ppf
    (match op with
    | Eq -> "="
    | Ne -> "<>"
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">=")

let pp_literal ppf = function
  | Pos a -> Atom.pp ppf a
  | Neg a -> Fmt.pf ppf "not %a" Atom.pp a
  | Cmp (op, x, y) -> Fmt.pf ppf "%a %a %a" Term.pp x pp_cmp op Term.pp y

let pp ppf r =
  Fmt.pf ppf "%a :- %a." Atom.pp r.head
    Fmt.(list ~sep:(any ", ") pp_literal)
    r.body

let to_string r = Fmt.str "%a" pp r
