(* First-order constraint formulas, as used in the paper to state schema
   consistency declaratively.  Constraints must be closed, range-restricted
   formulas; [Constraint_compile] rejects the rest. *)

type t =
  | True
  | False
  | Atom of Atom.t
  | Cmp of Rule.cmp * Term.t * Term.t
  | Not of t
  | And of t list
  | Or of t list
  | Implies of t * t
  | Iff of t * t
  | Forall of string list * t
  | Exists of string list * t

(* Smart constructors for readable constraint definitions. *)
let atom pred args = Atom (Atom.make pred args)
let ( ==> ) a b = Implies (a, b)
let ( &&& ) a b = And [ a; b ]
let ( ||| ) a b = Or [ a; b ]
let conj fs = And fs
let disj fs = Or fs
let neg f = Not f
let forall vars f = Forall (vars, f)
let exists vars f = Exists (vars, f)
let eq x y = Cmp (Rule.Eq, x, y)
let ne x y = Cmp (Rule.Ne, x, y)

let rec free_vars (f : t) : string list =
  let union a b = a @ List.filter (fun v -> not (List.mem v a)) b in
  let remove vs l = List.filter (fun v -> not (List.mem v vs)) l in
  match f with
  | True | False -> []
  | Atom a -> List.sort_uniq String.compare (Atom.vars a)
  | Cmp (_, x, y) ->
      List.filter_map (function Term.Var v -> Some v | Const _ -> None) [ x; y ]
      |> List.sort_uniq String.compare
  | Not g -> free_vars g
  | And gs | Or gs -> List.fold_left (fun acc g -> union acc (free_vars g)) [] gs
  | Implies (a, b) | Iff (a, b) -> union (free_vars a) (free_vars b)
  | Forall (vs, g) | Exists (vs, g) -> remove vs (free_vars g)

let is_closed f = free_vars f = []

(* Negation normal form: negations pushed to atoms/comparisons,
   Implies/Iff expanded. *)
let rec nnf (f : t) : t =
  match f with
  | True | False | Atom _ | Cmp _ -> f
  | And gs -> And (List.map nnf gs)
  | Or gs -> Or (List.map nnf gs)
  | Implies (a, b) -> Or [ nnf (Not a); nnf b ]
  | Iff (a, b) -> And [ nnf (Implies (a, b)); nnf (Implies (b, a)) ]
  | Forall (vs, g) -> Forall (vs, nnf g)
  | Exists (vs, g) -> Exists (vs, nnf g)
  | Not g -> (
      match g with
      | True -> False
      | False -> True
      | Atom _ -> Not (nnf g)
      | Cmp (op, x, y) -> Cmp (Rule.negate_cmp op, x, y)
      | Not h -> nnf h
      | And hs -> Or (List.map (fun h -> nnf (Not h)) hs)
      | Or hs -> And (List.map (fun h -> nnf (Not h)) hs)
      | Implies (a, b) -> And [ nnf a; nnf (Not b) ]
      | Iff (a, b) -> nnf (Or [ And [ a; Not b ]; And [ b; Not a ] ])
      | Forall (vs, h) -> Exists (vs, nnf (Not h))
      | Exists (vs, h) -> Forall (vs, nnf (Not h)))

(* Miniscoping: push quantifiers inward (input must be in NNF, with bound
   variables standardized apart).  This is what lets paper-style constraints
   with a mixed forall/exists prefix compile to range-restricted rules: in
   [forall D exists C (Decl(D) => Code(C, D))], the existential ends up
   scoped over the conclusion only. *)
let rec miniscope (f : t) : t =
  let mentions vs g = List.exists (fun v -> List.mem v (free_vars g)) vs in
  match f with
  | True | False | Atom _ | Cmp _ | Not _ -> f
  | And gs -> And (List.map miniscope gs)
  | Or gs -> Or (List.map miniscope gs)
  | Implies (a, b) -> Implies (miniscope a, miniscope b)
  | Iff (a, b) -> Iff (miniscope a, miniscope b)
  | Forall (vs, g) -> (
      let g = miniscope g in
      let vs = List.filter (fun v -> List.mem v (free_vars g)) vs in
      if vs = [] then g
      else
        match g with
        | And gs ->
            (* forall distributes over conjunction *)
            And (List.map (fun h -> miniscope (Forall (vs, h))) gs)
        | Or gs ->
            let dep, indep = List.partition (mentions vs) gs in
            if indep = [] then Forall (vs, g)
            else
              Or
                (indep
                @ [
                    (match dep with
                    | [] -> True
                    | [ h ] -> miniscope (Forall (vs, h))
                    | _ :: _ :: _ -> Forall (vs, Or dep));
                  ])
        | True | False | Atom _ | Cmp _ | Not _ | Implies _ | Iff _
        | Forall _ | Exists _ ->
            Forall (vs, g))
  | Exists (vs, g) -> (
      let g = miniscope g in
      let vs = List.filter (fun v -> List.mem v (free_vars g)) vs in
      if vs = [] then g
      else
        match g with
        | Or gs ->
            (* exists distributes over disjunction *)
            Or (List.map (fun h -> miniscope (Exists (vs, h))) gs)
        | And gs ->
            let dep, indep = List.partition (mentions vs) gs in
            if indep = [] then Exists (vs, g)
            else
              And
                (indep
                @ [
                    (match dep with
                    | [] -> True
                    | [ h ] -> miniscope (Exists (vs, h))
                    | _ :: _ :: _ -> Exists (vs, And dep));
                  ])
        | True | False | Atom _ | Cmp _ | Not _ | Implies _ | Iff _
        | Forall _ | Exists _ ->
            Exists (vs, g))

(* Rename bound variables apart so that compilation never captures. *)
let standardize_apart (f : t) : t =
  let counter = ref 0 in
  let fresh v =
    incr counter;
    Fmt.str "%s'%d" v !counter
  in
  let ren_term env = function
    | Term.Var v as t -> (
        match List.assoc_opt v env with
        | Some v' -> Term.Var v'
        | None -> t)
    | Term.Const _ as t -> t
  in
  let ren_atom env (a : Atom.t) =
    { a with args = Array.map (ren_term env) a.args }
  in
  let rec go env = function
    | True -> True
    | False -> False
    | Atom a -> Atom (ren_atom env a)
    | Cmp (op, x, y) -> Cmp (op, ren_term env x, ren_term env y)
    | Not g -> Not (go env g)
    | And gs -> And (List.map (go env) gs)
    | Or gs -> Or (List.map (go env) gs)
    | Implies (a, b) -> Implies (go env a, go env b)
    | Iff (a, b) -> Iff (go env a, go env b)
    | Forall (vs, g) ->
        let vs' = List.map fresh vs in
        Forall (vs', go (List.combine vs vs' @ env) g)
    | Exists (vs, g) ->
        let vs' = List.map fresh vs in
        Exists (vs', go (List.combine vs vs' @ env) g)
  in
  go [] f

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Atom a -> Atom.pp ppf a
  | Cmp (op, x, y) -> Fmt.pf ppf "%a %a %a" Term.pp x Rule.pp_cmp op Term.pp y
  | Not g -> Fmt.pf ppf "~(%a)" pp g
  | And gs -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " /\\ ") pp) gs
  | Or gs -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " \\/ ") pp) gs
  | Implies (a, b) -> Fmt.pf ppf "(%a => %a)" pp a pp b
  | Iff (a, b) -> Fmt.pf ppf "(%a <=> %a)" pp a pp b
  | Forall (vs, g) ->
      Fmt.pf ppf "forall %a. %a" Fmt.(list ~sep:(any ", ") string) vs pp g
  | Exists (vs, g) ->
      Fmt.pf ppf "exists %a. %a" Fmt.(list ~sep:(any ", ") string) vs pp g

let to_string f = Fmt.str "%a" pp f
