lib/datalog/atom.mli: Fact Fmt Term
