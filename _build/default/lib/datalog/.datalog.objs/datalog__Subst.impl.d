lib/datalog/subst.ml: Array Atom Fact Fmt Map String Term
