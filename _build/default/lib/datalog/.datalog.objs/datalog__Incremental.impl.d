lib/datalog/incremental.ml: Array Atom Checker Constraint_compile Database Delta Eval Fact Hashtbl List Relation Rule Stratify String Subst Theory
