lib/datalog/pretty.ml: Array Database Fact Fmt List Rule String Term
