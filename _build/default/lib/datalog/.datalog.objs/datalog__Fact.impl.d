lib/datalog/fact.ml: Array Fmt Int String Term
