lib/datalog/stratify.ml: Array Atom Fmt Hashtbl List Rule
