lib/datalog/theory.mli: Constraint_compile Database Eval Formula Rule
