lib/datalog/derivation.mli: Database Fact Fmt Rule Term
