lib/datalog/theory.ml: Atom Constraint_compile Database Eval Hashtbl List Rule String
