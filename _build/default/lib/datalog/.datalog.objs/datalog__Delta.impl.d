lib/datalog/delta.ml: Database Fact Fmt List String
