lib/datalog/atom.ml: Array Fact Fmt List String Term
