lib/datalog/delta.mli: Database Fact Fmt
