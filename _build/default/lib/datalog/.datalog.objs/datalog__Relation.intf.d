lib/datalog/relation.mli: Term
