lib/datalog/derivation.ml: Atom Database Eval Fact Fmt List Rule Subst Term
