lib/datalog/parse.ml: Atom Buffer Formula List Printf Rule String Term
