lib/datalog/stratify.mli: Rule
