lib/datalog/constraint_compile.ml: Atom Fmt Formula List Rule String Term
