lib/datalog/subst.mli: Atom Fact Fmt Term
