lib/datalog/rule.ml: Atom Fmt List String Term
