lib/datalog/repair.ml: Array Atom Checker Database Derivation Eval Fact Fmt Int List Relation Rule Subst Term Theory
