lib/datalog/relation.ml: Array Hashtbl List Term
