lib/datalog/pretty.mli: Database Fmt Rule
