lib/datalog/eval.ml: Array Atom Database Fact Fmt List Relation Rule Stratify Subst Term
