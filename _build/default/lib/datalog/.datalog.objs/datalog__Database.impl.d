lib/datalog/database.ml: Fact Hashtbl List Relation
