lib/datalog/incremental.mli: Checker Constraint_compile Database Delta Theory
