lib/datalog/constraint_compile.mli: Fmt Formula Rule
