lib/datalog/formula.mli: Atom Fmt Rule Term
