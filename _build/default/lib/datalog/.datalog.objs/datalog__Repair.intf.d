lib/datalog/repair.mli: Checker Database Fact Fmt Theory
