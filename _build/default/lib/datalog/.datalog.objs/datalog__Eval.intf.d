lib/datalog/eval.mli: Database Fact Relation Rule Stratify Subst
