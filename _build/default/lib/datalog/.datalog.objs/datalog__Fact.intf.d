lib/datalog/fact.mli: Fmt Term
