lib/datalog/formula.ml: Array Atom Fmt List Rule String Term
