lib/datalog/checker.mli: Constraint_compile Database Fmt Term Theory
