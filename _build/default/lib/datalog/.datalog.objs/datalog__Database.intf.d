lib/datalog/database.mli: Fact Relation Term
