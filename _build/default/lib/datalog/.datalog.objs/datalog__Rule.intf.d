lib/datalog/rule.mli: Atom Fmt Term
