lib/datalog/parse.mli: Formula Rule
