lib/datalog/checker.ml: Array Constraint_compile Database Eval Fact Fmt List Term Theory
