lib/datalog/term.ml: Fmt Int String
