(** A theory: declared base predicates, intensional rules, and named
    consistency constraints — the "definition feed" of the Consistency
    Control.  All three can be extended at run time, which is the paper's
    flexibility mechanism. *)

type pred_decl = { name : string; columns : string list }

type t

exception Duplicate of string

val create : unit -> t

val revision : t -> int
(** Bumped on every definition change; lets callers invalidate caches built
    against an older state of the theory. *)

val declare_predicate : t -> name:string -> columns:string list -> unit
(** @raise Duplicate if the predicate was already declared. *)

val predicate_declared : t -> string -> bool
val predicates : t -> pred_decl list

val add_rule : t -> Rule.t -> unit
val add_rules : t -> Rule.t list -> unit
val rules : t -> Rule.t list

val add_constraint : t -> name:string -> Formula.t -> unit
(** Compile and register a constraint.
    @raise Duplicate on a name clash.
    @raise Constraint_compile.Error if the formula is rejected. *)

val remove_constraint : t -> string -> bool
val replace_constraint : t -> name:string -> Formula.t -> unit
val constraints : t -> Constraint_compile.compiled list
val find_constraint : t -> string -> Constraint_compile.compiled option

val all_rules : t -> Rule.t list
(** Intensional rules followed by all compiled constraint rules. *)

val prepared : t -> Eval.prepared
(** Cached prepared program over {!all_rules}; invalidated by any change to
    the theory. *)

val fresh_database : t -> Database.t
(** A fresh empty database carrying this theory's predicate declarations. *)

val constraint_base_deps : t -> Constraint_compile.compiled -> string list
(** Base predicates a constraint transitively reads. *)

val affected_constraints :
  t -> changed_preds:string list -> Constraint_compile.compiled list
(** Constraints whose truth can depend on the given base predicates. *)
