(* A theory is the "definition feed" of the paper's Consistency Control: the
   declared base predicates (whose extensions form the Schema Base and Object
   Base Model), the rules defining intensional predicates (IDB), and the named
   consistency constraints (CDB).  All three can be extended at run time —
   this is precisely the flexibility mechanism of the paper: adding versioning
   or fashion is "feeding some additional definitions into the consistency
   control component". *)

type pred_decl = { name : string; columns : string list }

type t = {
  mutable pred_decls : pred_decl list;
  mutable idb_rules : Rule.t list;
  mutable constraints : Constraint_compile.compiled list;
  mutable prepared_cache : Eval.prepared option;
  mutable deps_cache : (string, string list) Hashtbl.t option;
  mutable revision : int;  (* bumped on every definition change *)
}

exception Duplicate of string

let create () =
  {
    pred_decls = [];
    idb_rules = [];
    constraints = [];
    prepared_cache = None;
    deps_cache = None;
    revision = 0;
  }

let invalidate t =
  t.prepared_cache <- None;
  t.deps_cache <- None;
  t.revision <- t.revision + 1

let revision t = t.revision

let declare_predicate t ~name ~columns =
  if List.exists (fun d -> d.name = name) t.pred_decls then
    raise (Duplicate ("predicate " ^ name));
  t.pred_decls <- t.pred_decls @ [ { name; columns } ];
  invalidate t

let predicate_declared t name = List.exists (fun d -> d.name = name) t.pred_decls
let predicates t = t.pred_decls

let add_rule t rule =
  t.idb_rules <- t.idb_rules @ [ rule ];
  invalidate t

let add_rules t rules = List.iter (add_rule t) rules
let rules t = t.idb_rules

let add_constraint t ~name formula =
  if List.exists (fun c -> c.Constraint_compile.name = name) t.constraints then
    raise (Duplicate ("constraint " ^ name));
  let compiled = Constraint_compile.compile ~name formula in
  t.constraints <- t.constraints @ [ compiled ];
  invalidate t

let remove_constraint t name =
  let before = List.length t.constraints in
  t.constraints <-
    List.filter (fun c -> c.Constraint_compile.name <> name) t.constraints;
  let removed = List.length t.constraints < before in
  if removed then invalidate t;
  removed

let replace_constraint t ~name formula =
  ignore (remove_constraint t name);
  add_constraint t ~name formula

let constraints t = t.constraints

let find_constraint t name =
  List.find_opt (fun c -> c.Constraint_compile.name = name) t.constraints

let all_rules t =
  t.idb_rules
  @ List.concat_map (fun c -> c.Constraint_compile.rules) t.constraints

let prepared t =
  match t.prepared_cache with
  | Some p -> p
  | None ->
      let p = Eval.prepare (all_rules t) in
      t.prepared_cache <- Some p;
      p

let fresh_database t =
  let db = Database.create () in
  List.iter
    (fun d -> Database.declare db ~name:d.name ~columns:d.columns)
    t.pred_decls;
  db

(* Map every predicate to the base predicates it transitively reads. *)
let base_deps t : (string, string list) Hashtbl.t =
  match t.deps_cache with
  | Some tbl -> tbl
  | None ->
      let rules = all_rules t in
      let defined = Hashtbl.create 16 in
      List.iter (fun r -> Hashtbl.replace defined r.Rule.head.Atom.pred ())
        rules;
      let memo = Hashtbl.create 16 in
      let rec deps pred visiting =
        match Hashtbl.find_opt memo pred with
        | Some ds -> ds
        | None ->
            if List.mem pred visiting then []
            else if not (Hashtbl.mem defined pred) then [ pred ]
            else begin
              let ds =
                List.filter (fun r -> r.Rule.head.Atom.pred = pred) rules
                |> List.concat_map Rule.body_preds
                |> List.concat_map (fun p -> deps p (pred :: visiting))
                |> List.sort_uniq String.compare
              in
              Hashtbl.replace memo pred ds;
              ds
            end
      in
      let tbl = Hashtbl.create 16 in
      Hashtbl.iter (fun pred () -> Hashtbl.replace tbl pred (deps pred [])) defined;
      List.iter (fun d -> Hashtbl.replace tbl d.name [ d.name ]) t.pred_decls;
      t.deps_cache <- Some tbl;
      tbl

let constraint_base_deps t (c : Constraint_compile.compiled) : string list =
  let tbl = base_deps t in
  Constraint_compile.direct_deps c
  |> List.concat_map (fun p ->
         match Hashtbl.find_opt tbl p with Some ds -> ds | None -> [ p ])
  |> List.sort_uniq String.compare

let affected_constraints t ~changed_preds =
  List.filter
    (fun c ->
      let deps = constraint_base_deps t c in
      List.exists (fun p -> List.mem p deps) changed_preds)
    t.constraints
