(* Atoms: a predicate applied to terms (variables or constants). *)

type t = { pred : string; args : Term.t array }

let make pred args = { pred; args = Array.of_list args }
let make_arr pred args = { pred; args }

let arity a = Array.length a.args

let vars a =
  Array.to_list a.args
  |> List.filter_map (function Term.Var v -> Some v | Const _ -> None)

let is_ground a = Array.for_all (fun t -> not (Term.is_var t)) a.args

let to_fact a =
  let conv = function
    | Term.Const c -> c
    | Term.Var v -> invalid_arg ("Atom.to_fact: unbound variable " ^ v)
  in
  { Fact.pred = a.pred; args = Array.map conv a.args }

let of_fact (f : Fact.t) =
  { pred = f.pred; args = Array.map (fun c -> Term.Const c) f.args }

let equal a b =
  String.equal a.pred b.pred
  && Array.length a.args = Array.length b.args
  && Array.for_all2 Term.equal a.args b.args

let pp ppf a =
  Fmt.pf ppf "%s(%a)" a.pred Fmt.(array ~sep:(any ", ") Term.pp) a.args

let to_string a = Fmt.str "%a" pp a
