(* Runtime values: the contents of object slots and the results of
   interpreted operations. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Enum of string * string  (* sort type id, value name *)
  | Obj of string  (* object identifier *)

let equal (a : t) (b : t) =
  match a, b with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | Enum (t1, v1), Enum (t2, v2) -> t1 = t2 && v1 = v2
  | Obj x, Obj y -> String.equal x y
  | (Null | Int _ | Float _ | Str _ | Bool _ | Enum _ | Obj _), _ -> false

let truthy = function
  | Bool b -> b
  | Null -> false
  | Int i -> i <> 0
  | Float f -> f <> 0.0
  | Str s -> s <> ""
  | Enum _ | Obj _ -> true

let as_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Null | Str _ | Bool _ | Enum _ | Obj _ -> None

(* The default slot content for a freshly created object, by domain type. *)
let default_for ~domain_tid =
  match domain_tid with
  | "tid_int" -> Int 0
  | "tid_float" -> Float 0.0
  | "tid_string" -> Str ""
  | "tid_bool" -> Bool false
  | "tid_char" -> Str ""
  | "tid_date" -> Int 0
  | _ -> Null

let pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%g" f
  | Str s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.bool ppf b
  | Enum (_, v) -> Fmt.string ppf v
  | Obj oid -> Fmt.pf ppf "<%s>" oid

let to_string v = Fmt.str "%a" pp v
