(** Runtime values: the contents of object slots and the results of
    interpreted operations. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Enum of string * string  (** sort type id, value name *)
  | Obj of string  (** object identifier *)

val equal : t -> t -> bool
(** Structural; [Int]/[Float] compare numerically. *)

val truthy : t -> bool

val as_float : t -> float option

val default_for : domain_tid:string -> t
(** The default slot content for a freshly created object. *)

val pp : t Fmt.t
val to_string : t -> string
