(* The Runtime System: object management and the physical representation.

   It owns the object store, interprets operation code (via Interp), performs
   dynamic binding with refinement, redirects accesses on masked objects via
   the fashion construct, and reports every change of the physical model
   (PhRep and Slot facts) through the [modify] callback — the paper's
   requirement that "the Runtime System has to correctly report changes in
   the object's representation via the modify operation". *)

module Ast = Analyzer.Ast
module Value = Value
module Object_store = Object_store
module Interp = Interp
module Masking = Masking

open Gom

type t = {
  store : Object_store.t;
  schema : unit -> Datalog.Database.t;  (* the current schema base *)
  lookup_code : string -> (string list * Ast.stmt) option;
  modify : Datalog.Delta.t -> unit;  (* report base-fact changes *)
  ids : Ids.gen;
  globals : (string, Value.t) Hashtbl.t;  (* schema variable contents *)
}

exception Error = Interp.Runtime_error

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let create ~schema ~lookup_code ~modify ~ids =
  {
    store = Object_store.create ();
    schema;
    lookup_code;
    modify;
    ids;
    globals = Hashtbl.create 16;
  }

let store t = t.store

let report_add t facts =
  t.modify (Datalog.Delta.of_lists ~additions:facts ~deletions:[])

let report_del t facts =
  t.modify (Datalog.Delta.of_lists ~additions:[] ~deletions:facts)

(* ------------------------------------------------------------------ *)
(* Physical representations                                            *)
(* ------------------------------------------------------------------ *)

(* The physical representation of a type, created (and reported) on first
   use: one PhRep fact plus one Slot fact per attribute, including inherited
   ones; slot value representations are ensured recursively.  The PhRep fact
   is reported before recursing so that recursive types terminate. *)
let rec ensure_phrep t ~tid : string =
  let db = t.schema () in
  match Schema_base.phrep_of_type db ~tid with
  | Some clid -> clid
  | None ->
      let clid = Ids.fresh t.ids Ids.Phrep in
      report_add t [ Preds.phrep_fact ~clid ~tid ];
      List.iter
        (fun (attr_name, domain) ->
          let value_clid = ensure_phrep t ~tid:domain in
          report_add t
            [ Preds.slot_fact ~clid ~attr_name ~value_clid ])
        (Schema_base.all_attrs db ~tid);
      clid

(* Withdraw a type's physical representation (its last instance is gone). *)
let retire_phrep t ~tid =
  let db = t.schema () in
  match Schema_base.phrep_of_type db ~tid with
  | None -> ()
  | Some clid ->
      let slots = Schema_base.slots_of_phrep db ~clid in
      report_del t
        (List.map
           (fun (attr_name, value_clid) ->
             Preds.slot_fact ~clid ~attr_name ~value_clid)
           slots
        @ [ Preds.phrep_fact ~clid ~tid ])

(* ------------------------------------------------------------------ *)
(* Objects                                                             *)
(* ------------------------------------------------------------------ *)

let new_object t ~tid : Value.t =
  let db = t.schema () in
  (match Schema_base.type_name db ~tid with
  | Some _ -> ()
  | None -> error "cannot instantiate unknown type %s" tid);
  ignore (ensure_phrep t ~tid);
  let slots =
    List.map
      (fun (attr_name, domain) ->
        attr_name, Value.default_for ~domain_tid:domain)
      (Schema_base.all_attrs db ~tid)
  in
  let obj = Object_store.insert t.store ~tid ~slots in
  Value.Obj obj.Object_store.oid

let delete_object t ~oid =
  match Object_store.find t.store oid with
  | None -> false
  | Some obj ->
      let tid = obj.Object_store.tid in
      let deleted = Object_store.delete t.store oid in
      if deleted && Object_store.count_of_type t.store ~tid = 0 then
        retire_phrep t ~tid;
      deleted

(* Delete every instance of a type (the drastic repair of section 3.5:
   "-PhRep(clid_4, tid_4) ... results in deleting all cars"). *)
let delete_all_of_type t ~tid =
  let objs = Object_store.objects_of_type t.store ~tid in
  List.iter
    (fun (o : Object_store.obj) ->
      ignore (Object_store.delete t.store o.Object_store.oid))
    objs;
  if objs <> [] then retire_phrep t ~tid;
  List.length objs

let find_object t oid = Object_store.find t.store oid

(* ------------------------------------------------------------------ *)
(* Attribute access with fashion masking                               *)
(* ------------------------------------------------------------------ *)

let require_obj t v =
  match v with
  | Value.Obj oid -> (
      match Object_store.find t.store oid with
      | Some obj -> obj
      | None -> error "dangling object reference %s" oid)
  | v -> error "expected an object, got %s" (Value.to_string v)

let has_attr db ~tid ~name =
  List.mem_assoc name (Schema_base.all_attrs db ~tid)

(* The fashion accessor pair for attribute [name] on a masked object of type
   [masked]: search the fashion targets of [masked]. *)
let fashion_accessors db ~masked ~name =
  List.find_map
    (fun target ->
      Schema_base.fashion_attr db ~owner_tid:target ~attr_name:name
        ~masked_tid:masked)
    (Schema_base.fashion_targets db ~tid:masked)

let rec run_code t ~cid ~self ~args =
  match t.lookup_code cid with
  | None -> error "no interpretable code registered for %s" cid
  | Some (params, body) ->
      let n_params = List.length params and n_args = List.length args in
      if n_params <> n_args then
        error "code %s expects %d argument(s), got %d" cid n_params n_args;
      Interp.exec (hooks t) ~self ~params:(List.combine params args) body

and read_attr t receiver name : Value.t =
  let obj = require_obj t receiver in
  let db = t.schema () in
  let tid = obj.Object_store.tid in
  if has_attr db ~tid ~name then
    match Object_store.get_slot obj name with
    | Some v -> v
    | None ->
        error "object %s has no slot %s (schema/object inconsistency)"
          obj.Object_store.oid name
  else
    match fashion_accessors db ~masked:tid ~name with
    | Some (read_cid, _) -> run_code t ~cid:read_cid ~self:receiver ~args:[]
    | None ->
        error "type %s has no attribute %s"
          (Option.value ~default:tid (Schema_base.type_name db ~tid))
          name

and write_attr t receiver name v : unit =
  let obj = require_obj t receiver in
  let db = t.schema () in
  let tid = obj.Object_store.tid in
  if has_attr db ~tid ~name then Object_store.set_slot obj name v
  else
    match fashion_accessors db ~masked:tid ~name with
    | Some (_, write_cid) ->
        ignore (run_code t ~cid:write_cid ~self:receiver ~args:[ v ])
    | None ->
        error "type %s has no attribute %s"
          (Option.value ~default:tid (Schema_base.type_name db ~tid))
          name

(* ------------------------------------------------------------------ *)
(* Operation dispatch: dynamic binding + fashion imitation             *)
(* ------------------------------------------------------------------ *)

and call t receiver op args : Value.t =
  let obj = require_obj t receiver in
  let db = t.schema () in
  let tid = obj.Object_store.tid in
  match Schema_base.resolve_decl db ~tid ~name:op with
  | Some d -> (
      match Schema_base.code_of_decl db ~did:d.Schema_base.did with
      | Some (cid, _) -> run_code t ~cid ~self:receiver ~args
      | None -> error "operation %s has no implementation" op)
  | None -> (
      (* fashion: imitate the operation of a target type version *)
      let imitation =
        List.find_map
          (fun target ->
            match Schema_base.resolve_decl db ~tid:target ~name:op with
            | Some d ->
                Schema_base.fashion_decl db ~did:d.Schema_base.did
                  ~masked_tid:tid
            | None -> None)
          (Schema_base.fashion_targets db ~tid)
      in
      match imitation with
      | Some cid -> run_code t ~cid ~self:receiver ~args
      | None ->
          error "type %s has no operation %s"
            (Option.value ~default:tid (Schema_base.type_name db ~tid))
            op)

and lookup_global t name : Value.t option =
  match Hashtbl.find_opt t.globals name with
  | Some v -> Some v
  | None -> (
      let db = t.schema () in
      match Sorts.sort_of_value db ~value:name with
      | Some tid -> Some (Value.Enum (tid, name))
      | None -> None)

and new_object_ref t (r : Ast.type_ref) : Value.t =
  let db = t.schema () in
  let tid =
    match r.Ast.ref_schema with
    | Some schema ->
        Schema_base.find_type_at db ~type_name:r.Ast.ref_name
          ~schema_name:schema
    | None -> (
        match Gom.Builtin.tid_of_sort r.Ast.ref_name with
        | Some tid -> Some tid
        | None ->
            Schema_base.schemas db
            |> List.find_map (fun (sid, _) ->
                   Schema_base.find_type db ~sid ~name:r.Ast.ref_name))
  in
  match tid with
  | Some tid -> new_object t ~tid
  | None -> error "new: unknown type %s" r.Ast.ref_name

and hooks t : Interp.hooks =
  {
    Interp.read_attr = read_attr t;
    write_attr = write_attr t;
    call = call t;
    new_object = new_object_ref t;
    lookup_global = lookup_global t;
  }

(* ------------------------------------------------------------------ *)
(* Convenience API                                                     *)
(* ------------------------------------------------------------------ *)

let set_global t name v = Hashtbl.replace t.globals name v
let get_global t name = Hashtbl.find_opt t.globals name

(* Call an operation by name on an object value. *)
let send t receiver ~op ~args = call t receiver op args

let get t receiver ~attr = read_attr t receiver attr
let set t receiver ~attr ~value = write_attr t receiver attr value

(* ------------------------------------------------------------------ *)
(* Conversion routines (section 3.5)                                   *)
(* ------------------------------------------------------------------ *)

(* Conversion eagerly reorganizes the object base — adding or deleting slots
   on every affected object, or migrating objects to another type version —
   and reports the corresponding PhRep/Slot changes through modify. *)
module Conversion = struct


  (* Types whose physical representation contains the attributes of [tid]:
     [tid] itself and all (transitive) subtypes. *)
  let affected_types db ~tid =
    let rec go acc frontier =
      match frontier with
      | [] -> List.rev acc
      | t :: rest ->
          let subs =
            Schema_base.direct_subtypes db ~tid:t
            |> List.filter (fun s -> not (List.mem s acc) && not (List.mem s rest))
          in
          go (t :: acc) (rest @ subs)
    in
    go [] [ tid ]

  (* Add the slot for a new attribute [attr : domain] of [tid] to every
     affected representation and object.  [fill] computes the value to write
     into the new slot of each object (the paper: "by providing a default
     value, by asking the user for every instance, or by providing an
     operation that ... provides a value").  Returns the number of objects
     converted. *)
  let add_attribute_slots (rt : t) ~tid ~attr ~domain
      ~(fill : Object_store.obj -> Value.t) : int =
    let db = rt.schema () in
    let converted = ref 0 in
    List.iter
      (fun t ->
        match Schema_base.phrep_of_type db ~tid:t with
        | None -> ()  (* no instances: nothing to convert *)
        | Some clid ->
            let value_clid = ensure_phrep rt ~tid:domain in
            report_add rt
              [ Preds.slot_fact ~clid ~attr_name:attr ~value_clid ];
            List.iter
              (fun (o : Object_store.obj) ->
                Object_store.set_slot o attr (fill o);
                incr converted)
              (Object_store.objects_of_type rt.store ~tid:t))
      (affected_types db ~tid);
    !converted

  (* Drop the slot of a deleted attribute from every affected representation
     and object. *)
  let drop_attribute_slots (rt : t) ~tid ~attr : int =
    let db = rt.schema () in
    let converted = ref 0 in
    List.iter
      (fun t ->
        match Schema_base.phrep_of_type db ~tid:t with
        | None -> ()
        | Some clid -> (
            match
              List.assoc_opt attr (Schema_base.slots_of_phrep db ~clid)
            with
            | None -> ()
            | Some value_clid ->
                report_del rt
                  [ Preds.slot_fact ~clid ~attr_name:attr ~value_clid ];
                List.iter
                  (fun (o : Object_store.obj) ->
                    Object_store.remove_slot o attr;
                    incr converted)
                  (Object_store.objects_of_type rt.store ~tid:t)))
      (affected_types db ~tid);
    !converted

  (* Migrate one object to another type version: its slots are rebuilt for the
     new type; [init attr obj] supplies the value of each new slot (and may
     read the old slots of [obj]).  The physical representation bookkeeping
     (old type may lose its last instance, new type may gain its first) is
     reported. *)
  let migrate_object (rt : t) ~oid ~to_tid
      ~(init : string -> Object_store.obj -> Value.t) : bool =
    match Object_store.find rt.store oid with
    | None -> false
    | Some obj ->
        let db = rt.schema () in
        let from_tid = obj.Object_store.tid in
        ignore (ensure_phrep rt ~tid:to_tid);
        let new_attrs = Schema_base.all_attrs db ~tid:to_tid in
        let new_slots = List.map (fun (a, _) -> a, init a obj) new_attrs in
        List.iter (Object_store.remove_slot obj) (Object_store.slot_names obj);
        List.iter (fun (a, v) -> Object_store.set_slot obj a v) new_slots;
        obj.Object_store.tid <- to_tid;
        if Object_store.count_of_type rt.store ~tid:from_tid = 0 then
          retire_phrep rt ~tid:from_tid;
        true

  (* Migrate every instance of a type version (O2-style eager conversion). *)
  let migrate_all (rt : t) ~from_tid ~to_tid
      ~(init : string -> Object_store.obj -> Value.t) : int =
    let objs = Object_store.objects_of_type rt.store ~tid:from_tid in
    List.iter
      (fun (o : Object_store.obj) ->
        ignore (migrate_object rt ~oid:o.Object_store.oid ~to_tid ~init))
      objs;
    List.length objs

  (* Keep the old slot value when the attribute survives, otherwise use the
     type's default: the common migration initializer. *)
  let keep_or_default db ~to_tid : string -> Object_store.obj -> Value.t =
   fun attr obj ->
    match Object_store.get_slot obj attr with
    | Some v -> v
    | None ->
        let domain =
          match List.assoc_opt attr (Schema_base.all_attrs db ~tid:to_tid) with
          | Some d -> d
          | None -> "tid_void"
        in
        Value.default_for ~domain_tid:domain

end
