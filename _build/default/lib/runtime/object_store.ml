(* The object base: the physical representation of all instantiated objects.
   Each object carries its identity, the type (version) it was instantiated
   from, and its slots. *)

type obj = {
  oid : string;
  mutable tid : string;
  slots : (string, Value.t) Hashtbl.t;
}

type t = { objects : (string, obj) Hashtbl.t; mutable next : int }

let create () = { objects = Hashtbl.create 64; next = 0 }

let fresh_oid store =
  store.next <- store.next + 1;
  Printf.sprintf "oid_%d" store.next

let insert store ~tid ~slots =
  let oid = fresh_oid store in
  let obj = { oid; tid; slots = Hashtbl.create 8 } in
  List.iter (fun (a, v) -> Hashtbl.replace obj.slots a v) slots;
  Hashtbl.replace store.objects oid obj;
  obj

(* Insert under a caller-supplied identity (persistence restore). *)
let insert_keyed store ~oid ~tid =
  let obj = { oid; tid; slots = Hashtbl.create 8 } in
  Hashtbl.replace store.objects oid obj;
  obj

let counter store = store.next
let bump_counter store n = if n > store.next then store.next <- n

let find store oid = Hashtbl.find_opt store.objects oid

let delete store oid =
  let existed = Hashtbl.mem store.objects oid in
  Hashtbl.remove store.objects oid;
  existed

let iter store f = Hashtbl.iter (fun _ o -> f o) store.objects

let objects_of_type store ~tid =
  Hashtbl.fold (fun _ o acc -> if o.tid = tid then o :: acc else acc)
    store.objects []

let count_of_type store ~tid = List.length (objects_of_type store ~tid)
let cardinal store = Hashtbl.length store.objects

(* Deep snapshot / restore, used for session rollback. *)
let snapshot store =
  let copy = { objects = Hashtbl.create (Hashtbl.length store.objects); next = store.next } in
  Hashtbl.iter
    (fun oid o ->
      Hashtbl.replace copy.objects oid
        { oid = o.oid; tid = o.tid; slots = Hashtbl.copy o.slots })
    store.objects;
  copy

let restore store ~from =
  Hashtbl.reset store.objects;
  Hashtbl.iter
    (fun oid o ->
      Hashtbl.replace store.objects oid
        { oid = o.oid; tid = o.tid; slots = Hashtbl.copy o.slots })
    from.objects;
  store.next <- from.next

let get_slot obj name = Hashtbl.find_opt obj.slots name
let set_slot obj name v = Hashtbl.replace obj.slots name v
let remove_slot obj name = Hashtbl.remove obj.slots name
let slot_names obj = Hashtbl.fold (fun a _ acc -> a :: acc) obj.slots []
