(* Interpreter for the GOM method-body language.  The schema (and with it the
   source code of operations) is interpreted, as assumed by the paper.
   Object access, dispatch and creation are delegated to hooks supplied by
   the Runtime facade, which is where dynamic binding and fashion masking
   live. *)

module Ast = Analyzer.Ast

exception Runtime_error of string

exception Return_value of Value.t

type hooks = {
  read_attr : Value.t -> string -> Value.t;
  write_attr : Value.t -> string -> Value.t -> unit;
  call : Value.t -> string -> Value.t list -> Value.t;
  new_object : Ast.type_ref -> Value.t;
  lookup_global : string -> Value.t option;
      (* enum values and schema variables *)
}

type env = {
  hooks : hooks;
  self : Value.t;
  mutable bindings : (string * Value.t ref) list;
}

let error fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

let lookup env x =
  match List.assoc_opt x env.bindings with
  | Some r -> Some !r
  | None -> env.hooks.lookup_global x

let num_binop op a b =
  match a, b with
  | Value.Int x, Value.Int y -> (
      match op with
      | Ast.Add -> Value.Int (x + y)
      | Ast.Sub -> Value.Int (x - y)
      | Ast.Mul -> Value.Int (x * y)
      | Ast.Div ->
          if y = 0 then error "division by zero" else Value.Int (x / y)
      | _ -> assert false)
  | _ -> (
      match Value.as_float a, Value.as_float b with
      | Some x, Some y -> (
          match op with
          | Ast.Add -> Value.Float (x +. y)
          | Ast.Sub -> Value.Float (x -. y)
          | Ast.Mul -> Value.Float (x *. y)
          | Ast.Div ->
              if y = 0.0 then error "division by zero" else Value.Float (x /. y)
          | _ -> assert false)
      | _, _ -> (
          match op, a, b with
          | Ast.Add, Value.Str x, Value.Str y -> Value.Str (x ^ y)
          | _ ->
              error "arithmetic on non-numeric values %s and %s"
                (Value.to_string a) (Value.to_string b)))

let cmp_binop op a b =
  let num_cmp f =
    match Value.as_float a, Value.as_float b with
    | Some x, Some y -> Value.Bool (f (compare x y) 0)
    | _ -> (
        match a, b with
        | Value.Str x, Value.Str y -> Value.Bool (f (String.compare x y) 0)
        | _ ->
            error "ordering on non-ordered values %s and %s"
              (Value.to_string a) (Value.to_string b))
  in
  match op with
  | Ast.Eq -> Value.Bool (Value.equal a b)
  | Ast.Ne -> Value.Bool (not (Value.equal a b))
  | Ast.Lt -> num_cmp ( < )
  | Ast.Le -> num_cmp ( <= )
  | Ast.Gt -> num_cmp ( > )
  | Ast.Ge -> num_cmp ( >= )
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.And | Ast.Or -> assert false

let rec eval env (e : Ast.expr) : Value.t =
  match e with
  | Ast.Int_lit i -> Value.Int i
  | Ast.Float_lit f -> Value.Float f
  | Ast.String_lit s -> Value.Str s
  | Ast.Bool_lit b -> Value.Bool b
  | Ast.Self -> env.self
  | Ast.Var x -> (
      match lookup env x with
      | Some v -> v
      | None -> error "unbound variable %s" x)
  | Ast.Attr_access (obj, a) -> env.hooks.read_attr (eval env obj) a
  | Ast.Call (obj, op, args) ->
      let receiver = eval env obj in
      let args = List.map (eval env) args in
      env.hooks.call receiver op args
  | Ast.Binop (Ast.And, a, b) ->
      if Value.truthy (eval env a) then Value.Bool (Value.truthy (eval env b))
      else Value.Bool false
  | Ast.Binop (Ast.Or, a, b) ->
      if Value.truthy (eval env a) then Value.Bool true
      else Value.Bool (Value.truthy (eval env b))
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div) as op, a, b) ->
      num_binop op (eval env a) (eval env b)
  | Ast.Binop (op, a, b) -> cmp_binop op (eval env a) (eval env b)
  | Ast.Neg a -> (
      match eval env a with
      | Value.Int i -> Value.Int (-i)
      | Value.Float f -> Value.Float (-.f)
      | v -> error "negation of non-numeric value %s" (Value.to_string v))
  | Ast.Not a -> Value.Bool (not (Value.truthy (eval env a)))
  | Ast.New r -> env.hooks.new_object r

let rec exec_stmt env (s : Ast.stmt) : unit =
  match s with
  | Ast.Block ss ->
      let saved = env.bindings in
      List.iter (exec_stmt env) ss;
      env.bindings <- saved
  | Ast.If (c, a, b) ->
      if Value.truthy (eval env c) then exec_stmt env a
      else Option.iter (exec_stmt env) b
  | Ast.While (c, body) ->
      let fuel = ref 1_000_000 in
      while Value.truthy (eval env c) do
        decr fuel;
        if !fuel <= 0 then error "while loop exceeded the execution budget";
        exec_stmt env body
      done
  | Ast.Return None -> raise (Return_value Value.Null)
  | Ast.Return (Some e) -> raise (Return_value (eval env e))
  | Ast.Local (x, _ty, init) ->
      let v = match init with Some e -> eval env e | None -> Value.Null in
      env.bindings <- (x, ref v) :: env.bindings
  | Ast.Assign (Ast.Lvar x, e) -> (
      let v = eval env e in
      match List.assoc_opt x env.bindings with
      | Some r -> r := v
      | None -> error "assignment to unbound variable %s" x)
  | Ast.Assign (Ast.Lattr (obj, a), e) ->
      let receiver = eval env obj in
      let v = eval env e in
      env.hooks.write_attr receiver a v
  | Ast.Expr e -> ignore (eval env e)

(* Execute a body with the given self and parameters; the value of the first
   executed return statement is the result (Null if none). *)
let exec hooks ~self ~params (body : Ast.stmt) : Value.t =
  let env =
    { hooks; self; bindings = List.map (fun (x, v) -> x, ref v) params }
  in
  try
    exec_stmt env body;
    Value.Null
  with Return_value v -> v
