(** Masking: substitutability checks combining subtyping with the fashion
    construct — FashionType(X, Y) makes instances of X substitutable for Y
    without touching the taxonomy. *)

val substitutable :
  Datalog.Database.t -> actual:string -> expected:string -> bool
(** Subtype of, or fashion-masked as. *)

val required_behaviour :
  Datalog.Database.t -> target:string -> string list * string list
(** (attribute names, operation names) a masked type must imitate. *)

val provided_behaviour :
  Datalog.Database.t ->
  masked:string ->
  target:string ->
  string list * string list

val missing_behaviour :
  Datalog.Database.t ->
  masked:string ->
  target:string ->
  string list * string list
(** What is still missing for complete masking (mirrors the fashion
    completeness constraints). *)
