(* Masking: substitutability checks combining subtyping with the fashion
   construct (section 4.1).  FashionType(X, Y) makes instances of X
   substitutable for Y without touching the taxonomy. *)

open Gom

(* Is a value of dynamic type [actual] acceptable where [expected] is
   required?  True for subtypes and for fashion-masked type versions. *)
let substitutable db ~actual ~expected =
  Schema_base.is_subtype db ~sub:actual ~super:expected
  || List.mem expected (Schema_base.fashion_targets db ~tid:actual)

(* The behaviours a masked type must imitate for a target: the target's
   attributes (including inherited ones) and its operations. *)
let required_behaviour db ~target =
  let attrs = Schema_base.all_attrs db ~tid:target |> List.map fst in
  let ops =
    (target :: Schema_base.supertypes db ~tid:target)
    |> List.concat_map (fun t -> Schema_base.direct_decls db ~tid:t)
    |> List.map (fun d -> d.Schema_base.op_name)
    |> List.sort_uniq String.compare
  in
  attrs, ops

(* The behaviours actually imitated. *)
let provided_behaviour db ~masked ~target =
  let attrs =
    Schema_base.all_attrs db ~tid:target
    |> List.filter_map (fun (a, _) ->
           match
             Schema_base.fashion_attr db ~owner_tid:target ~attr_name:a
               ~masked_tid:masked
           with
           | Some _ -> Some a
           | None -> None)
  in
  let ops =
    (target :: Schema_base.supertypes db ~tid:target)
    |> List.concat_map (fun t -> Schema_base.direct_decls db ~tid:t)
    |> List.filter_map (fun d ->
           match
             Schema_base.fashion_decl db ~did:d.Schema_base.did
               ~masked_tid:masked
           with
           | Some _ -> Some d.Schema_base.op_name
           | None -> None)
    |> List.sort_uniq String.compare
  in
  attrs, ops

(* What is still missing for complete masking (mirrors the
   fashion$AttrComplete / fashion$DeclComplete constraints). *)
let missing_behaviour db ~masked ~target =
  let req_attrs, req_ops = required_behaviour db ~target in
  let have_attrs, have_ops = provided_behaviour db ~masked ~target in
  ( List.filter (fun a -> not (List.mem a have_attrs)) req_attrs,
    List.filter (fun o -> not (List.mem o have_ops)) req_ops )
