(** Interpreter for the GOM method-body language (the schema's source code
    is interpreted, as the paper assumes).  Object access, dispatch and
    creation are delegated to hooks supplied by the Runtime facade. *)

module Ast = Analyzer.Ast

exception Runtime_error of string

exception Return_value of Value.t
(** Internal control flow; escapes only on a [return] outside any body. *)

type hooks = {
  read_attr : Value.t -> string -> Value.t;
  write_attr : Value.t -> string -> Value.t -> unit;
  call : Value.t -> string -> Value.t list -> Value.t;
  new_object : Ast.type_ref -> Value.t;
  lookup_global : string -> Value.t option;
      (** enum values and schema variables *)
}

val exec :
  hooks -> self:Value.t -> params:(string * Value.t) list -> Ast.stmt -> Value.t
(** Execute a body; the value of the first executed [return] is the result
    ([Null] if none).  While loops carry an execution budget against runaway
    recursion. *)
