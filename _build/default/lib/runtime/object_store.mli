(** The object base: the physical representation of all instantiated
    objects — identity, type (version), and slots. *)

type obj = {
  oid : string;
  mutable tid : string;
  slots : (string, Value.t) Hashtbl.t;
}

type t

val create : unit -> t
val insert : t -> tid:string -> slots:(string * Value.t) list -> obj

val insert_keyed : t -> oid:string -> tid:string -> obj
(** Insert under a caller-supplied identity (persistence restore). *)

val counter : t -> int

val bump_counter : t -> int -> unit
(** Raise the oid counter to at least [n]. *)

val find : t -> string -> obj option
val delete : t -> string -> bool
val iter : t -> (obj -> unit) -> unit
val objects_of_type : t -> tid:string -> obj list
val count_of_type : t -> tid:string -> int
val cardinal : t -> int

val snapshot : t -> t
(** Deep copy, for session rollback. *)

val restore : t -> from:t -> unit

val get_slot : obj -> string -> Value.t option
val set_slot : obj -> string -> Value.t -> unit
val remove_slot : obj -> string -> unit
val slot_names : obj -> string list
