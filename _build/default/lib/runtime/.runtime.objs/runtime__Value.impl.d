lib/runtime/value.ml: Fmt String
