lib/runtime/interp.ml: Analyzer Fmt List Option String Value
