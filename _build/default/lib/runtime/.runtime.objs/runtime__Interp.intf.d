lib/runtime/interp.mli: Analyzer Value
