lib/runtime/runtime.ml: Analyzer Datalog Fmt Gom Hashtbl Ids Interp List Masking Object_store Option Preds Schema_base Sorts Value
