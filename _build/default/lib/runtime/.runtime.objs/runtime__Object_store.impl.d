lib/runtime/object_store.ml: Hashtbl List Printf Value
