lib/runtime/masking.mli: Datalog
