lib/runtime/masking.ml: Gom List Schema_base String
