lib/runtime/object_store.mli: Hashtbl Value
