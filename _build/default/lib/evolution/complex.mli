(** Complex schema evolution operators, composed from primitives.  Every
    operator must run inside an open evolution session; none guarantees
    consistency by itself — that is the Consistency Control's job at EES,
    which is the paper's decoupling argument. *)

module Manager = Core.Manager
module Ast = Analyzer.Ast

type call_site = {
  cs_cid : string;  (** the piece of code containing rewritten calls *)
  cs_calls : int;  (** number of rewritten calls in it *)
}

val add_operation_argument :
  Manager.t ->
  tid:string ->
  op:string ->
  arg_tid:string ->
  default:Ast.expr ->
  call_site list
(** The paper's flagship non-decomposable evolution: extend the declaration
    and all its refinements with a new argument, extend their
    implementations' parameter lists, and rewrite every call site appending
    [default].  Returns the rewritten call sites.
    @raise Invalid_argument if the type has no such own operation. *)

val delete_hierarchy_node : Manager.t -> tid:string -> unit
(** Delete a node of the type hierarchy, reattaching its subtypes to its
    supertypes; the node's definition goes the primitive way, leaving any
    dangling references to the Consistency Control. *)

val pull_up_attribute :
  Manager.t -> tid:string -> attr:string -> to_tid:string -> unit

val push_down_attribute : Manager.t -> tid:string -> attr:string -> unit

val split_type_into_versions :
  Manager.t ->
  type_name:string ->
  old_schema:string ->
  new_schema:string ->
  subtypes:string list ->
  evolves_to:string ->
  unit
(** The parameterized section 4.2 operator: copy the type into a new schema
    version, add specialized subtypes, and record the evolution edges. *)
