(* AST rewriting utilities for complex evolution operators that must touch
   method bodies (e.g. adding an argument to an operation rewrites its call
   sites).  The generic traversal lives in [Analyzer.Ast]. *)

module Ast = Analyzer.Ast

let map_expr = Ast.map_expr
let map_stmt = Ast.map_stmt

(* Append [extra] to every call of [op] with [old_arity] arguments. *)
let add_call_argument ~op ~old_arity ~extra (body : Ast.stmt) : Ast.stmt * int =
  let touched = ref 0 in
  let rewrite = function
    | Ast.Call (obj, name, args)
      when name = op && List.length args = old_arity ->
        incr touched;
        Ast.Call (obj, name, args @ [ extra ])
    | e -> e
  in
  let body = map_stmt rewrite body in
  body, !touched

(* Count calls of [op] in a body. *)
let count_calls ~op (body : Ast.stmt) : int =
  let n = ref 0 in
  let visit = function
    | Ast.Call (_, name, _) as e ->
        if name = op then incr n;
        e
    | e -> e
  in
  ignore (map_stmt visit body);
  !n
