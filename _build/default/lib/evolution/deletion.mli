(** Five semantics for type deletion (after Bocionek [5] via the paper's
    introduction) — all composed from the same primitives, none requiring
    any change to the Consistency Control. *)

module Manager = Core.Manager

type semantics =
  | Restrict  (** refuse if the type is referenced or instantiated *)
  | Cascade  (** delete everything referencing the type, transitively *)
  | Retarget
      (** references move to the supertype; subtypes reattach; instances
          migrate *)
  | Defer
      (** remove just the Type fact; dangling references are left for the
          Consistency Control to report and repair *)
  | Version
      (** delete nothing: derive a new schema version without the type *)

val all : semantics list
val name : semantics -> string

val references : Datalog.Database.t -> tid:string -> Datalog.Fact.t list
(** Facts referencing a type from outside its own definition. *)

val own_facts : Datalog.Database.t -> tid:string -> Datalog.Fact.t list
(** The type's own definition facts. *)

val delete_type :
  Manager.t -> tid:string -> semantics -> (unit, string) result
(** Must run inside an open session. *)
