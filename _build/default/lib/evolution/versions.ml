(* Schema versioning support on top of the section 4.1 extension: deriving a
   whole schema version (after Kim/Chou), and generating the identity part of
   a fashion clause automatically so that old instances stay usable under the
   new version. *)

open Gom
module Manager = Core.Manager
module Ast = Analyzer.Ast

(* Derive a new version of a whole schema: a new schema, an evolves_to_S
   edge, a copy of every type, and evolves_to_T edges.  Returns the mapping
   from old to new type ids. *)
let derive_schema_version (m : Manager.t) ~(from_name : string)
    ~(new_name : string) : (string * string) list =
  let db = Manager.database m in
  let from_sid =
    match Schema_base.find_schema db ~name:from_name with
    | Some sid -> sid
    | None -> invalid_arg ("unknown schema " ^ from_name)
  in
  let old_types = Schema_base.types_of_schema db ~sid:from_sid in
  let script =
    String.concat "\n"
      ([
         Printf.sprintf "add schema %s;" new_name;
         Printf.sprintf "evolve schema %s to %s;" from_name new_name;
       ]
      @ List.map
          (fun (_, tname) ->
            Printf.sprintf "copy type %s@%s to %s;" tname from_name new_name)
          old_types
      @ List.map
          (fun (_, tname) ->
            Printf.sprintf "evolve type %s@%s to %s@%s;" tname from_name tname
              new_name)
          old_types)
  in
  Manager.run_commands m script;
  let db = Manager.database m in
  let new_sid = Option.get (Schema_base.find_schema db ~name:new_name) in
  List.map
    (fun (old_tid, tname) ->
      old_tid, Option.get (Schema_base.find_type db ~sid:new_sid ~name:tname))
    old_types

(* Generate the identity fashion entries making instances of [old_tid]
   substitutable for [new_tid]: attributes present under the same name are
   redirected, operations present under the same name are delegated.
   Returns the attribute and operation names that could NOT be generated
   automatically and need hand-written accessors (e.g. the paper's
   age/birthday pair). *)
let auto_fashion (m : Manager.t) ~(old_tid : string) ~(new_tid : string) :
    string list * string list =
  let db = Manager.database m in
  let old_attrs = Schema_base.all_attrs db ~tid:old_tid in
  let target_attrs = Schema_base.all_attrs db ~tid:new_tid in
  let attr_entries, missing_attrs =
    List.partition_map
      (fun (a, _) ->
        if List.mem_assoc a old_attrs then
          Either.Left
            (Printf.sprintf "  %s : ANY is self.%s;" a a)
        else Either.Right a)
      target_attrs
  in
  let ops_of tid =
    (tid :: Schema_base.supertypes db ~tid)
    |> List.concat_map (fun t -> Schema_base.direct_decls db ~tid:t)
    |> List.map (fun d -> d.Schema_base.op_name, d)
  in
  let old_ops = ops_of old_tid and target_ops = ops_of new_tid in
  (* keep the nearest declaration per operation name *)
  let dedupe ops =
    List.fold_left
      (fun acc (o, d) -> if List.mem_assoc o acc then acc else (o, d) :: acc)
      [] ops
    |> List.rev
  in
  let op_entries, missing_ops =
    List.partition_map
      (fun (o, d) ->
        if List.mem_assoc o old_ops then begin
          let params =
            Schema_base.args_of_decl db ~did:d.Schema_base.did
            |> List.map (fun (i, _) -> Printf.sprintf "p%d" i)
          in
          Either.Left
            (Printf.sprintf "  %s(%s) is begin return self.%s(%s); end;" o
               (String.concat ", " params)
               o
               (String.concat ", " params))
        end
        else Either.Right o)
      (dedupe target_ops)
  in
  let at tid =
    match Schema_base.type_info db ~tid with
    | Some (n, sid) ->
        Printf.sprintf "%s@%s" n
          (Option.value ~default:sid (Schema_base.schema_name db ~sid))
    | None -> tid
  in
  if attr_entries <> [] || op_entries <> [] then begin
    let clause =
      Printf.sprintf "fashion %s as %s where\n%s\nend fashion;" (at old_tid)
        (at new_tid)
        (String.concat "\n" (attr_entries @ op_entries))
    in
    Manager.load_definitions m clause
  end;
  missing_attrs, missing_ops

(* All versions reachable from a type by following evolves_to_T forward. *)
let version_successors db ~tid =
  let rec go acc frontier =
    match frontier with
    | [] -> List.rev acc
    | t :: rest ->
        let next =
          Schema_base.evolutions_of_type db ~tid:t
          |> List.filter (fun s -> not (List.mem s acc) && not (List.mem s rest))
        in
        go (t :: acc) (rest @ next)
  in
  match go [] [ tid ] with [] -> [] | _ :: rest -> rest

let version_predecessors db ~tid =
  let rec go acc frontier =
    match frontier with
    | [] -> List.rev acc
    | t :: rest ->
        let prev =
          Schema_base.predecessors_of_type db ~tid:t
          |> List.filter (fun s -> not (List.mem s acc) && not (List.mem s rest))
        in
        go (t :: acc) (rest @ prev)
  in
  match go [] [ tid ] with [] -> [] | _ :: rest -> rest
