(** AST rewriting utilities for evolution operators that must touch method
    bodies. *)

module Ast = Analyzer.Ast

val map_expr : (Ast.expr -> Ast.expr) -> Ast.expr -> Ast.expr
val map_stmt : (Ast.expr -> Ast.expr) -> Ast.stmt -> Ast.stmt

val add_call_argument :
  op:string -> old_arity:int -> extra:Ast.expr -> Ast.stmt -> Ast.stmt * int
(** Append [extra] to every call of [op] with [old_arity] arguments; returns
    the rewritten body and the number of rewritten calls. *)

val count_calls : op:string -> Ast.stmt -> int
