lib/evolution/deletion.mli: Core Datalog
