lib/evolution/complex.mli: Analyzer Core
