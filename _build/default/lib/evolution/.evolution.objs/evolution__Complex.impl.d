lib/evolution/complex.ml: Analyzer Array Core Database Datalog Delta Fact Gom List Preds Printf Rewrite Schema_base String Term
