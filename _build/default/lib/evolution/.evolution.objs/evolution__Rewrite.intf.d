lib/evolution/rewrite.mli: Analyzer
