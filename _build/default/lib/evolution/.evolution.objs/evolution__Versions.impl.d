lib/evolution/versions.ml: Analyzer Core Either Gom List Option Printf Schema_base String
