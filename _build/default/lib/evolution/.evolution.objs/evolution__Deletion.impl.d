lib/evolution/deletion.ml: Array Builtin Core Database Datalog Delta Fact Gom List Option Preds Printf Runtime Schema_base String Term
