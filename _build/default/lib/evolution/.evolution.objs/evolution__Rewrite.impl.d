lib/evolution/rewrite.ml: Analyzer List
