lib/evolution/versions.mli: Core Datalog
