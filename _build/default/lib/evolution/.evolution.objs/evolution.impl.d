lib/evolution/evolution.ml: Complex Deletion Rewrite Versions
