(* The evolution toolkit: complex schema evolution operators composed from
   primitives, the five type-deletion semantics, schema-version derivation,
   and AST rewriting for operators that must touch method bodies. *)

module Rewrite = Rewrite
module Complex = Complex
module Deletion = Deletion
module Versions = Versions
