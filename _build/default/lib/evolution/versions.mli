(** Schema versioning on top of the section 4.1 extension: deriving a whole
    schema version (after Kim/Chou) and generating the identity part of a
    fashion clause automatically. *)

module Manager = Core.Manager

val derive_schema_version :
  Manager.t -> from_name:string -> new_name:string -> (string * string) list
(** New schema + evolves_to_S edge + a copy of every type + evolves_to_T
    edges; returns old-to-new type id mapping.  Must run inside a session.
    @raise Invalid_argument on an unknown schema. *)

val auto_fashion :
  Manager.t -> old_tid:string -> new_tid:string -> string list * string list
(** Generate identity fashion entries (attribute redirects, operation
    delegations) for the behaviours both versions share; returns the
    attribute and operation names that still need hand-written accessors
    (e.g. the paper's age/birthday pair). *)

val version_successors : Datalog.Database.t -> tid:string -> string list
val version_predecessors : Datalog.Database.t -> tid:string -> string list
