bench/main.mli:
