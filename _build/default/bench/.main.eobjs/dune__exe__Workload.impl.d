bench/workload.ml: Array Buffer Builtin Database Datalog Fashion Gom Ids List Model Preds Printf Schema_base Sorts Subschema Theory Versioning
