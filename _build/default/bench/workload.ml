(* Workload generation for the benches: synthetic GOM schemas of a given
   size, either as base facts (for checker/incremental benches) or as DDL
   text (for the analyzer-throughput bench). *)

open Datalog
open Gom

let builtin_domains = [| "tid_int"; "tid_float"; "tid_string"; "tid_bool" |]

(* Seed [db] with a consistent synthetic schema: [types] types in chains of
   [chain] (transitive closure depth), each with [attrs] attributes and one
   implemented operation.  Returns the list of type ids. *)
let seed_schema ?(chain = 10) ?(attrs = 4) (db : Database.t) (ids : Ids.gen)
    ~(types : int) : string list =
  let sid = Ids.fresh ids Ids.Schema in
  ignore (Database.add db (Preds.schema_fact ~sid ~name:("Synth_" ^ sid)));
  let tids = Array.make types "" in
  for i = 0 to types - 1 do
    let tid = Ids.fresh ids Ids.Type in
    tids.(i) <- tid;
    ignore
      (Database.add db (Preds.type_fact ~tid ~name:(Printf.sprintf "T%d" i) ~sid));
    let super = if i mod chain = 0 then Builtin.any_tid else tids.(i - 1) in
    ignore (Database.add db (Preds.subtyprel_fact ~sub:tid ~super));
    for a = 0 to attrs - 1 do
      ignore
        (Database.add db
           (Preds.attr_fact ~tid
              ~name:(Printf.sprintf "a%d_%d" i a)
              ~domain:builtin_domains.(a mod Array.length builtin_domains)))
    done;
    let did = Ids.fresh ids Ids.Decl in
    ignore
      (Database.add db
         (Preds.decl_fact ~did ~receiver:tid
            ~name:(Printf.sprintf "op%d" i)
            ~result:"tid_float"));
    ignore
      (Database.add db
         (Preds.argdecl_fact ~did ~pos:1 ~tid:"tid_float"));
    let cid = Ids.fresh ids Ids.Code in
    ignore
      (Database.add db (Preds.code_fact ~cid ~text:"begin return 0.0; end" ~did))
  done;
  Array.to_list tids

(* A fresh consistent database of the given size, with the full theory's
   predicate declarations. *)
let database (theory : Theory.t) ~types : Database.t * Ids.gen * string list =
  let db = Database.create () in
  List.iter
    (fun (d : Theory.pred_decl) ->
      Database.declare db ~name:d.Theory.name ~columns:d.Theory.columns)
    (Theory.predicates theory);
  Builtin.seed db;
  let ids = Ids.create () in
  let tids = seed_schema db ids ~types in
  db, ids, tids

let full_theory () =
  let t = Theory.create () in
  Model.install_core t;
  Versioning.install t;
  Fashion.install t;
  Subschema.install t;
  Sorts.install t;
  t

(* DDL text for the analyzer bench: [types] type frames with attributes,
   an operation and an implementation each. *)
let schema_text ~types : string =
  let buf = Buffer.create (types * 200) in
  Buffer.add_string buf "schema Generated is\n";
  for i = 0 to types - 1 do
    Buffer.add_string buf (Printf.sprintf "  type T%d is\n    [ " i);
    for a = 0 to 3 do
      Buffer.add_string buf
        (Printf.sprintf "f%d : %s; "
           a
           [| "int"; "float"; "string"; "bool" |].(a))
    done;
    Buffer.add_string buf "]\n  operations\n";
    Buffer.add_string buf (Printf.sprintf "    declare op%d : (float) -> float;\n" i);
    Buffer.add_string buf "  implementation\n";
    Buffer.add_string buf
      (Printf.sprintf
         "    define op%d(x) is begin return self.f1 + x; end op%d;\n" i i);
    Buffer.add_string buf (Printf.sprintf "  end type T%d;\n" i)
  done;
  Buffer.add_string buf "end schema Generated;\n";
  Buffer.contents buf

(* Seed [k] star-constraint violations: attributes without slots on types
   that have instances. *)
let seed_violations (db : Database.t) (ids : Ids.gen) (tids : string list)
    ~(k : int) : unit =
  List.iteri
    (fun i tid ->
      if i < k then begin
        let clid = Ids.fresh ids Ids.Phrep in
        ignore (Database.add db (Preds.phrep_fact ~clid ~tid));
        (* slots for the type's own attributes so only the new one is
           missing; inherited attributes are covered by adding slots for
           the whole chain *)
        List.iter
          (fun (attr_name, domain) ->
            let value_clid =
              match Builtin.clid_of_tid domain with
              | Some c -> c
              | None -> "clid_int"
            in
            ignore
              (Database.add db (Preds.slot_fact ~clid ~attr_name ~value_clid)))
          (Schema_base.all_attrs db ~tid);
        ignore
          (Database.add db
             (Preds.attr_fact ~tid ~name:"missing_attr" ~domain:"tid_string"))
      end)
    tids
