examples/versioned_library.mli:
