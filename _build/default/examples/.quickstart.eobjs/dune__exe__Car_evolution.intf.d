examples/car_evolution.mli:
