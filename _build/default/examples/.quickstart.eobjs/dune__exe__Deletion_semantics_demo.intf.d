examples/deletion_semantics_demo.mli:
