examples/cad_company.mli:
