examples/versioned_library.ml: Core Evolution Filename Gom List Manager Option Persist Printf Runtime String Sys
