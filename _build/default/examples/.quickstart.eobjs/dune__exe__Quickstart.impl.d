examples/quickstart.ml: Analyzer Core Datalog Fmt Gom List Manager Option Printf Runtime
