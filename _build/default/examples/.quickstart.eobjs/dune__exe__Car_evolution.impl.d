examples/car_evolution.ml: Analyzer Core Gom List Manager Option Printf Runtime
