examples/deletion_semantics_demo.ml: Analyzer Core Datalog Evolution Fmt Gom List Manager Option Printf Runtime String
