examples/cad_company.ml: Analyzer Core Gom List Manager Option Printf Runtime String
