examples/quickstart.mli:
