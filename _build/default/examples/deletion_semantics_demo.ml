(* The five semantics of type deletion (Bocionek [5] via the paper's
   introduction): the same "delete type Person" request, five different
   meanings — all built from the same primitives, none requiring any change
   to the Consistency Control.

   Run with:  dune exec examples/deletion_semantics_demo.exe *)

open Core
module Value = Runtime.Value

let section title = Printf.printf "\n=== %s ===\n%!" title

(* a fresh manager with the CarSchema and one Person instance *)
let setup () =
  let m = Manager.create () in
  Manager.begin_session m;
  Manager.load_definitions m Analyzer.Sources.car_schema;
  (match Manager.end_session m with
  | Manager.Consistent -> ()
  | Manager.Inconsistent _ -> failwith "unexpected");
  let rt = Manager.runtime m in
  let db = Manager.database m in
  let tid name =
    Option.get
      (Gom.Schema_base.find_type_at db ~type_name:name ~schema_name:"CarSchema")
  in
  let person = Runtime.new_object rt ~tid:(tid "Person") in
  Runtime.set rt person ~attr:"age" ~value:(Value.Int 30);
  m, tid "Person"

let () =
  List.iter
    (fun semantics ->
      section
        (Printf.sprintf "delete type Person with '%s' semantics"
           (Evolution.Deletion.name semantics));
      let m, person = setup () in
      Manager.begin_session m;
      match Evolution.Deletion.delete_type m ~tid:person semantics with
      | Error msg ->
          Printf.printf "refused: %s\n" msg;
          Manager.rollback m
      | Ok () -> (
          match Manager.end_session m with
          | Manager.Consistent ->
              Printf.printf "deleted; schema remains consistent.\n";
              let db = Manager.database m in
              Printf.printf "  schemas now: %s\n"
                (String.concat ", "
                   (List.map snd (Gom.Schema_base.schemas db)))
          | Manager.Inconsistent reports ->
              Printf.printf
                "deleted, but the Consistency Control reports %d dangling \
                 reference(s):\n"
                (List.length reports);
              List.iteri
                (fun i r ->
                  if i < 4 then Printf.printf "  %s\n" r.Manager.description)
                reports;
              (* show the generated repairs for the first violation *)
              (match reports with
              | r :: _ ->
                  let repairs = Manager.repairs_for m r.Manager.violation in
                  Printf.printf "  repairs offered for the first one:\n";
                  List.iter
                    (fun (rep, explanations) ->
                      Printf.printf "    %s\n"
                        (Fmt.str "%a" Datalog.Repair.pp rep);
                      List.iter
                        (fun e -> Printf.printf "      -> %s\n" e)
                        explanations)
                    repairs
              | [] -> ());
              Manager.rollback m;
              Printf.printf "  (rolled back)\n"))
    Evolution.Deletion.all;
  print_endline "\nDone."
