(* Schema versioning in the large: derive whole schema versions (Kim/Chou
   style, section 4.1), let the toolkit generate the identity masking
   automatically, write the missing accessors by hand, and persist the whole
   database across "restarts".

   Run with:  dune exec examples/versioned_library.exe *)

open Core
module Value = Runtime.Value

let section title = Printf.printf "\n=== %s ===\n%!" title

let library_v1 =
  {|
schema Library is
  type Book is
    [ title : string;
      author : string;
      year : int; ]
  operations
    declare describe : -> string;
  implementation
    define describe is
    begin
      return self.title + " (" + self.author + ")";
    end describe;
  end type Book;
  type Member is
    [ name : string;
      borrowed : int; ]
  end type Member;
end schema Library;
|}

let () =
  section "Version 1 of the library schema";
  let m = Manager.create () in
  Manager.begin_session m;
  Manager.load_definitions m library_v1;
  (match Manager.end_session m with
  | Manager.Consistent -> print_endline "Library v1 loaded."
  | Manager.Inconsistent _ -> failwith "unexpected");
  let rt = Manager.runtime m in
  let db = Manager.database m in
  let tid ?(schema = "Library") name =
    Option.get
      (Gom.Schema_base.find_type_at db ~type_name:name ~schema_name:schema)
  in

  (* a few v1 books *)
  let books =
    List.map
      (fun (t, a, y) ->
        let b = Runtime.new_object rt ~tid:(tid "Book") in
        Runtime.set rt b ~attr:"title" ~value:(Value.Str t);
        Runtime.set rt b ~attr:"author" ~value:(Value.Str a);
        Runtime.set rt b ~attr:"year" ~value:(Value.Int y);
        b)
      [
        "On Schemas", "Moerkotte", 1993;
        "On Masking", "Zachmann", 1992;
      ]
  in

  section "Derive version 2 (whole-schema versioning)";
  Manager.begin_session m;
  let mapping =
    Evolution.Versions.derive_schema_version m ~from_name:"Library"
      ~new_name:"LibraryV2"
  in
  Printf.printf "derived LibraryV2; %d types mapped\n" (List.length mapping);
  (* v2 replaces year by a decade attribute *)
  Manager.run_commands m
    {|delete attribute year from Book@LibraryV2;
      add attribute decade : int to Book@LibraryV2;|};
  (match Manager.end_session m with
  | Manager.Consistent -> print_endline "LibraryV2 is consistent."
  | Manager.Inconsistent _ -> failwith "unexpected");

  section "Automatic masking for the unchanged parts";
  let old_book = tid "Book" in
  let new_book = List.assoc old_book mapping in
  Manager.begin_session m;
  let missing_attrs, missing_ops =
    Evolution.Versions.auto_fashion m ~old_tid:old_book ~new_tid:new_book
  in
  Printf.printf "auto-generated identity accessors; still missing: %s\n"
    (String.concat ", " (missing_attrs @ missing_ops));

  section "The age/decade accessors are written by hand";
  Manager.load_definitions m
    {|
fashion Book@Library as Book@LibraryV2 where
  decade : -> int is begin return self.year - (self.year - (self.year / 10) * 10); end;
  decade : <- int is begin self.year := value; end;
end fashion;
|};
  (match Manager.end_session m with
  | Manager.Consistent -> print_endline "masking complete and consistent."
  | Manager.Inconsistent reports ->
      List.iter (fun r -> Printf.printf "violation: %s\n" r.Manager.description)
        reports;
      failwith "masking incomplete");

  section "Old books answer the v2 interface";
  List.iter
    (fun b ->
      let d = Runtime.get rt b ~attr:"decade" in
      let s = Runtime.send rt b ~op:"describe" ~args:[] in
      Printf.printf "%s -> decade %s\n" (Value.to_string s) (Value.to_string d))
    books;

  section "Persist the whole database and restart";
  let path = Filename.temp_file "library" ".db" in
  Persist.save m ~path;
  Printf.printf "saved to %s (%d bytes)\n" path
    (let ic = open_in_bin path in
     let n = in_channel_length ic in
     close_in ic;
     n);
  let m2 = Persist.load ~path () in
  Sys.remove path;
  let rt2 = Manager.runtime m2 in
  let restored =
    Runtime.Object_store.objects_of_type (Runtime.store rt2) ~tid:old_book
  in
  Printf.printf "restored %d books; first describes as %s\n"
    (List.length restored)
    (match restored with
    | o :: _ ->
        Value.to_string
          (Runtime.send rt2 (Value.Obj o.Runtime.Object_store.oid)
             ~op:"describe" ~args:[])
    | [] -> "<none>");
  print_endline "\nDone."
