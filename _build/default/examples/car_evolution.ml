(* The paper's section 4.2 scenario end to end: the world changes (catalyst
   vs non-catalyst cars), the schema designer tailors the type hierarchy in a
   new schema version, and old Car instances remain usable as PolluterCar
   instances through the fashion construct.

   Run with:  dune exec examples/car_evolution.exe *)

open Core
module Value = Runtime.Value

let section title = Printf.printf "\n=== %s ===\n%!" title

let () =
  section "The world before catalysts: CarSchema";
  let m = Manager.create () in
  Manager.begin_session m;
  Manager.load_definitions m Analyzer.Sources.car_schema;
  (match Manager.end_session m with
  | Manager.Consistent -> print_endline "CarSchema loaded."
  | Manager.Inconsistent _ -> failwith "unexpected");
  let rt = Manager.runtime m in
  let db = Manager.database m in
  let tid ?(schema = "CarSchema") name =
    Option.get
      (Gom.Schema_base.find_type_at db ~type_name:name ~schema_name:schema)
  in

  (* a fleet of old cars *)
  let driver = Runtime.new_object rt ~tid:(tid "Person") in
  let munich = Runtime.new_object rt ~tid:(tid "City") in
  Runtime.set rt munich ~attr:"longi" ~value:(Value.Float 3.0);
  Runtime.set rt munich ~attr:"lati" ~value:(Value.Float 4.0);
  let fleet =
    List.init 3 (fun i ->
        let car = Runtime.new_object rt ~tid:(tid "Car") in
        Runtime.set rt car ~attr:"owner" ~value:driver;
        Runtime.set rt car ~attr:"location"
          ~value:(Runtime.new_object rt ~tid:(tid "City"));
        Runtime.set rt car ~attr:"maxspeed"
          ~value:(Value.Float (float_of_int (120 + (10 * i))));
        car)
  in
  Printf.printf "%d old cars on leaded fuel.\n" (List.length fleet);

  section "Step 1-6: the seven-step evolution of section 4.2";
  (* executed as one schema evolution session; the Consistency Control
     checks the net result at EES *)
  (match Manager.run_script m Analyzer.Sources.new_car_schema_commands with
  | Manager.Consistent ->
      print_endline "NewCarSchema with PolluterCar/CatalystCar is consistent."
  | Manager.Inconsistent reports ->
      List.iter (fun r -> Printf.printf "violation: %s\n" r.Manager.description)
        reports;
      failwith "scenario failed");

  section "Step 7: fashion makes old cars substitutable for PolluterCar";
  let fashion =
    {|
bes;
fashion Car@CarSchema as PolluterCar@NewCarSchema where
  owner : Person@NewCarSchema is self.owner;
  maxspeed : float is self.maxspeed;
  milage : float is self.milage;
  location : City@NewCarSchema is self.location;
  fuel is begin return leaded; end;
  changeLocation(driver, newLocation) is
    begin return self.changeLocation(driver, newLocation); end;
end fashion;
ees;
|}
  in
  (match Manager.run_script m fashion with
  | Manager.Consistent -> print_endline "fashion clause accepted."
  | Manager.Inconsistent reports ->
      List.iter (fun r -> Printf.printf "violation: %s\n" r.Manager.description)
        reports;
      failwith "fashion failed");

  section "Old instances answer the new interface";
  List.iteri
    (fun i car ->
      let fuel = Runtime.send rt car ~op:"fuel" ~args:[] in
      let speed = Runtime.get rt car ~attr:"maxspeed" in
      Printf.printf "old car %d: fuel = %s, maxspeed = %s\n" (i + 1)
        (Value.to_string fuel) (Value.to_string speed))
    fleet;

  section "New catalyst cars coexist";
  let catalyst = Runtime.new_object rt ~tid:(tid ~schema:"NewCarSchema" "CatalystCar") in
  let fuel = Runtime.send rt catalyst ~op:"fuel" ~args:[] in
  Printf.printf "new CatalystCar: fuel = %s\n" (Value.to_string fuel);

  section "Substitutability (masking, not subtyping)";
  let old_car = tid "Car" in
  let polluter = tid ~schema:"NewCarSchema" "PolluterCar" in
  Printf.printf "Car@CarSchema substitutable for PolluterCar@NewCarSchema: %b\n"
    (Runtime.Masking.substitutable db ~actual:old_car ~expected:polluter);
  Printf.printf "...but not a subtype: %b\n"
    (not (Gom.Schema_base.is_subtype db ~sub:old_car ~super:polluter));

  section "Old cars can still drive (through the imitation)";
  let first = List.hd fleet in
  let milage = Runtime.send rt first ~op:"changeLocation" ~args:[ driver; munich ] in
  Printf.printf "changeLocation through fashion: milage = %s\n"
    (Value.to_string milage);
  print_endline "\nDone."
