(* Quickstart: define a schema, run an evolution session, let the
   Consistency Control catch a mistake, pick a repair, and work with objects.

   Run with:  dune exec examples/quickstart.exe *)

open Core
module Value = Runtime.Value

let section title = Printf.printf "\n=== %s ===\n%!" title

let () =
  section "1. Create a schema manager and load the paper's CarSchema";
  let m = Manager.create () in
  Manager.begin_session m;
  Manager.load_definitions m Analyzer.Sources.car_schema;
  (match Manager.end_session m with
  | Manager.Consistent -> print_endline "CarSchema loaded and consistent."
  | Manager.Inconsistent _ -> failwith "unexpected");

  section "2. Create objects and run interpreted operations";
  let rt = Manager.runtime m in
  let db = Manager.database m in
  let tid name =
    Option.get
      (Gom.Schema_base.find_type_at db ~type_name:name ~schema_name:"CarSchema")
  in
  let car = Runtime.new_object rt ~tid:(tid "Car") in
  let driver = Runtime.new_object rt ~tid:(tid "Person") in
  let karlsruhe = Runtime.new_object rt ~tid:(tid "City") in
  let vienna = Runtime.new_object rt ~tid:(tid "City") in
  Runtime.set rt karlsruhe ~attr:"name" ~value:(Value.Str "Karlsruhe");
  Runtime.set rt vienna ~attr:"name" ~value:(Value.Str "Vienna");
  Runtime.set rt vienna ~attr:"longi" ~value:(Value.Float 8.0);
  Runtime.set rt vienna ~attr:"lati" ~value:(Value.Float 6.0);
  Runtime.set rt car ~attr:"owner" ~value:driver;
  Runtime.set rt car ~attr:"location" ~value:karlsruhe;
  let milage = Runtime.send rt car ~op:"changeLocation" ~args:[ driver; vienna ] in
  Printf.printf "after changeLocation, milage = %s\n" (Value.to_string milage);

  section "3. Propose a schema change that breaks schema/object consistency";
  Manager.begin_session m;
  Manager.run_commands m "add attribute fuelType : string to Car@CarSchema;";
  (match Manager.end_session m with
  | Manager.Consistent -> print_endline "consistent (unexpected)"
  | Manager.Inconsistent reports ->
      List.iter (fun r -> Printf.printf "detected: %s\n" r.Manager.description)
        reports;

      section "4. Ask the Consistency Control for repairs";
      let report = List.hd reports in
      let repairs = Manager.repairs_for m report.Manager.violation in
      List.iteri
        (fun i (repair, explanations) ->
          Printf.printf "repair %d: %s\n" (i + 1)
            (Fmt.str "%a" Datalog.Repair.pp repair);
          List.iter (fun e -> Printf.printf "  -> %s\n" e) explanations)
        repairs;

      section "5. Choose the conversion repair and finish the session";
      let conversion =
        List.find
          (fun (rep, _) ->
            match rep with
            | [ Datalog.Repair.Add f ] -> f.Datalog.Fact.pred = "Slot"
            | _ -> false)
          repairs
      in
      Manager.execute_repair m
        ~fill:(fun _ -> Value.Str "leaded")
        (fst conversion);
      (match Manager.end_session m with
      | Manager.Consistent -> print_endline "session ended consistently."
      | Manager.Inconsistent _ -> print_endline "still inconsistent?"));

  Printf.printf "the existing car was converted: fuelType = %s\n"
    (Value.to_string (Runtime.get rt car ~attr:"fuelType"));

  section "6. The user can change the notion of consistency itself";
  Datalog.Theory.add_constraint (Manager.theory m) ~name:"user$NoFastCars"
    Datalog.Formula.(
      forall [ "T"; "A"; "D" ]
        (atom "Attr" [ Datalog.Term.var "T"; Datalog.Term.var "A"; Datalog.Term.var "D" ]
        ==> ne (Datalog.Term.var "A") (Datalog.Term.sym "topSpeed")));
  Manager.begin_session m;
  Manager.run_commands m "add attribute topSpeed : float to Car@CarSchema;";
  (match Manager.end_session m with
  | Manager.Consistent -> print_endline "accepted (unexpected)"
  | Manager.Inconsistent reports ->
      List.iter
        (fun r -> Printf.printf "user-defined constraint fired: %s\n" r.Manager.description)
        reports;
      Manager.rollback m);
  print_endline "\nDone."
