(* The appendix-A company: a hierarchy of schemas structuring thousands of
   engineering types, name spaces with two different Cuboid types, renaming,
   information hiding via public clauses, and explicit imports.

   Run with:  dune exec examples/cad_company.exe *)

open Core
module Value = Runtime.Value

let section title = Printf.printf "\n=== %s ===\n%!" title

let () =
  section "Load the company schema hierarchy (Figure 3)";
  let m = Manager.create () in
  Manager.begin_session m;
  Manager.load_definitions m Analyzer.Sources.company_schemas;
  (match Manager.end_session m with
  | Manager.Consistent -> print_endline "hierarchy loaded and consistent."
  | Manager.Inconsistent reports ->
      List.iter (fun r -> Printf.printf "violation: %s\n" r.Manager.description)
        reports;
      failwith "unexpected");
  let db = Manager.database m in

  section "The schema tree";
  let rec show indent sid =
    let name =
      Option.value ~default:sid (Gom.Schema_base.schema_name db ~sid)
    in
    let types = Gom.Schema_base.types_of_schema db ~sid in
    Printf.printf "%s%s%s\n" indent name
      (if types = [] then ""
       else
         Printf.sprintf "  [%s]"
           (String.concat ", " (List.map snd types)));
    List.iter (show (indent ^ "  "))
      (List.sort compare (Gom.Schema_base.child_schemas db ~sid))
  in
  let roots =
    Gom.Schema_base.schemas db
    |> List.filter (fun (sid, name) ->
           name <> Gom.Builtin.builtin_schema_name
           && Gom.Schema_base.parent_schema db ~sid = None)
  in
  List.iter (fun (sid, _) -> show "" sid) roots;

  section "Two Cuboid types coexist in different name spaces";
  let csg = Option.get (Gom.Schema_base.find_schema db ~name:"CSG") in
  let brep = Option.get (Gom.Schema_base.find_schema db ~name:"BoundaryRep") in
  let csg_cuboid = Option.get (Gom.Schema_base.find_type db ~sid:csg ~name:"Cuboid") in
  let brep_cuboid = Option.get (Gom.Schema_base.find_type db ~sid:brep ~name:"Cuboid") in
  Printf.printf "Cuboid@CSG = %s with attributes %s\n" csg_cuboid
    (String.concat ", "
       (List.map fst (Gom.Schema_base.direct_attrs db ~tid:csg_cuboid)));
  Printf.printf "Cuboid@BoundaryRep = %s with attributes %s\n" brep_cuboid
    (String.concat ", "
       (List.map fst (Gom.Schema_base.direct_attrs db ~tid:brep_cuboid)));

  section "Information hiding: Surface/Edge/Vertex are implementation-only";
  List.iter
    (fun (kind, name) -> Printf.printf "public in BoundaryRep: %s %s\n" kind name)
    (Gom.Schema_base.public_comps db ~sid:brep);

  section "The CSG2BoundRep tool imports both Cuboids under new names";
  let conv = Option.get (Gom.Schema_base.find_schema db ~name:"CSG2BoundRep") in
  List.iter
    (fun (kind, new_name, src, old) ->
      Printf.printf "in CSG2BoundRep: %s %s renames %s of %s\n" kind new_name
        old
        (Option.value ~default:src (Gom.Schema_base.schema_name db ~sid:src)))
    (Gom.Schema_base.renames_in db ~sid:conv);

  section "Run the converter on a CSG cuboid";
  let rt = Manager.runtime m in
  let converter_tid =
    Option.get (Gom.Schema_base.find_type db ~sid:conv ~name:"Converter")
  in
  let converter = Runtime.new_object rt ~tid:converter_tid in
  let c = Runtime.new_object rt ~tid:csg_cuboid in
  Runtime.set rt c ~attr:"width" ~value:(Value.Float 2.0);
  Runtime.set rt c ~attr:"height" ~value:(Value.Float 3.0);
  Runtime.set rt c ~attr:"depth" ~value:(Value.Float 4.0);
  let converted = Runtime.send rt converter ~op:"convert" ~args:[ c ] in
  Printf.printf "converted cuboid volume = %s\n"
    (Value.to_string (Runtime.get rt converted ~attr:"volume"));

  section "A name conflict, detected and then resolved by renaming";
  Manager.begin_session m;
  Manager.load_definitions m
    {|
schema CSG2 is
  public Cuboid;
interface
  type Cuboid is [ w : float; ] end type Cuboid;
end schema CSG2;
schema BoundaryRep2 is
  public Cuboid;
interface
  type Cuboid is [ v : float; ] end type Cuboid;
end schema BoundaryRep2;
schema Tooling is
  subschema CSG2;
  subschema BoundaryRep2;
  type Workbench is [ main : Cuboid; ] end type Workbench;
end schema Tooling;
|};
  List.iter
    (fun d -> Printf.printf "analyzer: %s\n" d)
    (Manager.session_diagnostics m);
  Manager.rollback m;
  Manager.begin_session m;
  Manager.load_definitions m
    {|
schema CSG2 is
  public Cuboid;
interface
  type Cuboid is [ w : float; ] end type Cuboid;
end schema CSG2;
schema BoundaryRep2 is
  public Cuboid;
interface
  type Cuboid is [ v : float; ] end type Cuboid;
end schema BoundaryRep2;
schema Tooling is
  subschema CSG2 with type Cuboid as CSGCuboid; end subschema CSG2;
  subschema BoundaryRep2 with type Cuboid as BRepCuboid; end subschema BoundaryRep2;
  type Workbench is [ main : CSGCuboid; spare : BRepCuboid; ] end type Workbench;
end schema Tooling;
|};
  (match Manager.end_session m with
  | Manager.Consistent -> print_endline "renamed version accepted."
  | Manager.Inconsistent _ -> print_endline "unexpected inconsistency");
  print_endline "\nDone."
