bes;
add schema Zoo;
add type Animal to Zoo;
add attribute legs : int to Animal@Zoo;
add type Bird to Zoo supertype Animal@Zoo;
evolve schema Zoo to Zoo;
ees;
