  $ ../../bin/gomsm.exe check zoo.gom
  $ ../../bin/gomsm.exe check bad.gom
  $ ../../bin/gomsm.exe dump zoo.gom
  $ ../../bin/gomsm.exe dump zoo.gom > redump.gom
  $ ../../bin/gomsm.exe check redump.gom
  $ ../../bin/gomsm.exe script evolve.gs
  $ ../../bin/gomsm.exe paper
