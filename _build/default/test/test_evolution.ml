(* Tests for the evolution toolkit (complex operators, the five deletion
   semantics, version derivation with automatic masking) and the baseline
   systems (ORION, ENCORE, O2). *)

open Core
module Value = Runtime.Value
module Ast = Analyzer.Ast

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let manager_with_cars () =
  let m = Manager.create () in
  Manager.begin_session m;
  Manager.load_definitions m Analyzer.Sources.car_schema;
  (match Manager.end_session m with
  | Manager.Consistent -> ()
  | Manager.Inconsistent _ -> Alcotest.fail "car schema inconsistent");
  m

let tid_of m name =
  Option.get
    (Gom.Schema_base.find_type_at (Manager.database m) ~type_name:name
       ~schema_name:"CarSchema")

let expect_consistent m =
  match Manager.end_session m with
  | Manager.Consistent -> ()
  | Manager.Inconsistent rs ->
      Alcotest.failf "inconsistent: %s"
        (String.concat "; " (List.map (fun r -> r.Manager.description) rs))

(* ------------------------------------------------------------------ *)
(* Complex operators                                                   *)
(* ------------------------------------------------------------------ *)

let test_add_operation_argument () =
  (* The paper's section 2.1 example: adding an argument to distance —
     impossible as a consistency-preserving single step, fine as a complex
     operator inside one session.  changeLocation's call site is rewritten
     and both the declaration and its refinement gain the argument. *)
  let m = manager_with_cars () in
  Manager.begin_session m;
  let sites =
    Evolution.Complex.add_operation_argument m ~tid:(tid_of m "Location")
      ~op:"distance" ~arg_tid:"tid_bool" ~default:(Ast.Bool_lit false)
  in
  expect_consistent m;
  (* two call sites: changeLocation (self.location.distance(...)) and City's
     own distance (other.distance(self)) *)
  check_int "two rewritten call sites" 2 (List.length sites);
  let db = Manager.database m in
  let d_loc =
    Option.get
      (Gom.Schema_base.resolve_decl db ~tid:(tid_of m "Location")
         ~name:"distance")
  in
  let d_city =
    Option.get
      (Gom.Schema_base.resolve_decl db ~tid:(tid_of m "City") ~name:"distance")
  in
  check_int "base decl has 2 args" 2
    (List.length (Gom.Schema_base.args_of_decl db ~did:d_loc.Gom.Schema_base.did));
  check_int "refinement has 2 args" 2
    (List.length (Gom.Schema_base.args_of_decl db ~did:d_city.Gom.Schema_base.did))

let test_add_argument_rewritten_code_still_runs () =
  let m = manager_with_cars () in
  Manager.begin_session m;
  ignore
    (Evolution.Complex.add_operation_argument m ~tid:(tid_of m "Location")
       ~op:"distance" ~arg_tid:"tid_bool" ~default:(Ast.Bool_lit false));
  expect_consistent m;
  let rt = Manager.runtime m in
  let car = Runtime.new_object rt ~tid:(tid_of m "Car") in
  let person = Runtime.new_object rt ~tid:(tid_of m "Person") in
  let city = Runtime.new_object rt ~tid:(tid_of m "City") in
  Runtime.set rt city ~attr:"longi" ~value:(Value.Float 3.0);
  Runtime.set rt city ~attr:"lati" ~value:(Value.Float 4.0);
  Runtime.set rt car ~attr:"owner" ~value:person;
  Runtime.set rt car ~attr:"location"
    ~value:(Runtime.new_object rt ~tid:(tid_of m "City"));
  Runtime.set rt car ~attr:"milage" ~value:(Value.Float 0.0);
  let result = Runtime.send rt car ~op:"changeLocation" ~args:[ person; city ] in
  check_bool "still computes" true (Value.equal result (Value.Float 25.0))

let test_half_done_add_argument_is_caught () =
  (* Doing it by hand and forgetting the refinement: contravariance fires. *)
  let m = manager_with_cars () in
  let db = Manager.database m in
  let d_loc =
    Option.get
      (Gom.Schema_base.resolve_decl db ~tid:(tid_of m "Location")
         ~name:"distance")
  in
  Manager.begin_session m;
  Manager.propose m
    (Datalog.Delta.of_lists
       ~additions:
         [ Gom.Preds.argdecl_fact ~did:d_loc.Gom.Schema_base.did ~pos:2
             ~tid:"tid_bool" ]
       ~deletions:[]);
  (match Manager.end_session m with
  | Manager.Consistent -> Alcotest.fail "expected contravariance violation"
  | Manager.Inconsistent rs ->
      check_bool "contravariance" true
        (List.exists
           (fun r ->
             r.Manager.violation.Datalog.Checker.constraint_name
             = "refine$Contravariance")
           rs));
  Manager.rollback m

let test_delete_hierarchy_node () =
  let m = manager_with_cars () in
  (* insert a node between Location and City, then delete it *)
  Manager.begin_session m;
  Manager.run_commands m
    "add type Settlement to CarSchema supertype Location@CarSchema;";
  Manager.run_commands m "delete supertype Location@CarSchema from City@CarSchema;";
  Manager.run_commands m "add supertype Settlement@CarSchema to City@CarSchema;";
  expect_consistent m;
  let settlement = tid_of m "Settlement" in
  Manager.begin_session m;
  Evolution.Complex.delete_hierarchy_node m ~tid:settlement;
  expect_consistent m;
  let db = Manager.database m in
  check_bool "city directly under location again" true
    (Gom.Schema_base.direct_supertypes db ~tid:(tid_of m "City")
    = [ tid_of m "Location" ])

let test_pull_up_attribute () =
  let m = manager_with_cars () in
  Manager.begin_session m;
  Evolution.Complex.pull_up_attribute m ~tid:(tid_of m "City")
    ~attr:"noOfInhabitants" ~to_tid:(tid_of m "Location");
  expect_consistent m;
  let db = Manager.database m in
  check_bool "moved" true
    (List.mem_assoc "noOfInhabitants"
       (Gom.Schema_base.direct_attrs db ~tid:(tid_of m "Location")));
  check_bool "still visible on City" true
    (List.mem_assoc "noOfInhabitants"
       (Gom.Schema_base.all_attrs db ~tid:(tid_of m "City")))

let test_split_type_operator () =
  (* The parameterized section 4.2 operator. *)
  let m = manager_with_cars () in
  Manager.begin_session m;
  Evolution.Complex.split_type_into_versions m ~type_name:"Car"
    ~old_schema:"CarSchema" ~new_schema:"NewCarSchema"
    ~subtypes:[ "PolluterCar"; "CatalystCar" ] ~evolves_to:"PolluterCar";
  expect_consistent m;
  let db = Manager.database m in
  let new_sid = Option.get (Gom.Schema_base.find_schema db ~name:"NewCarSchema") in
  check_int "three types in new schema" 3
    (List.length (Gom.Schema_base.types_of_schema db ~sid:new_sid))

(* ------------------------------------------------------------------ *)
(* The five deletion semantics                                          *)
(* ------------------------------------------------------------------ *)

let test_delete_restrict_refuses_referenced () =
  let m = manager_with_cars () in
  Manager.begin_session m;
  (match Evolution.Deletion.delete_type m ~tid:(tid_of m "Person")
           Evolution.Deletion.Restrict
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "Person is referenced by Car.owner: must refuse");
  Manager.rollback m

let test_delete_restrict_accepts_unreferenced () =
  let m = manager_with_cars () in
  Manager.begin_session m;
  Manager.run_commands m "add type Loner to CarSchema;";
  expect_consistent m;
  Manager.begin_session m;
  (match Evolution.Deletion.delete_type m ~tid:(tid_of m "Loner")
           Evolution.Deletion.Restrict
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "unexpected refusal: %s" e);
  expect_consistent m

let test_delete_cascade () =
  let m = manager_with_cars () in
  Manager.begin_session m;
  (match Evolution.Deletion.delete_type m ~tid:(tid_of m "Person")
           Evolution.Deletion.Cascade
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "cascade failed: %s" e);
  (* Car.owner and changeLocation's Person argument were deleted; the
     changeLocation code still references the owner attribute, so the
     consistency check reports exactly that — delete the code too. *)
  match Manager.end_session m with
  | Manager.Consistent -> ()
  | Manager.Inconsistent _ ->
      Manager.run_commands m "delete operation changeLocation from Car@CarSchema;";
      expect_consistent m

let test_delete_retarget () =
  let m = manager_with_cars () in
  let rt = Manager.runtime m in
  let city = Runtime.new_object rt ~tid:(tid_of m "City") in
  Manager.begin_session m;
  (match Evolution.Deletion.delete_type m ~tid:(tid_of m "City")
           Evolution.Deletion.Retarget
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "retarget failed: %s" e);
  (* Car.location now has domain Location; City's instance became a
     Location; City's distance refinement died with it *)
  let db = Manager.database m in
  check_bool "location retargeted" true
    (List.assoc_opt "location" (Gom.Schema_base.direct_attrs db ~tid:(tid_of m "Car"))
    = Some (tid_of m "Location"));
  (match city with
  | Value.Obj oid ->
      let o = Option.get (Runtime.find_object rt oid) in
      check_bool "instance migrated" true
        (o.Runtime.Object_store.tid = tid_of m "Location")
  | _ -> Alcotest.fail "expected object");
  expect_consistent m

let test_delete_defer_generates_repairs () =
  let m = manager_with_cars () in
  Manager.begin_session m;
  (match Evolution.Deletion.delete_type m ~tid:(tid_of m "Person")
           Evolution.Deletion.Defer
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "defer failed: %s" e);
  match Manager.end_session m with
  | Manager.Consistent -> Alcotest.fail "expected dangling references"
  | Manager.Inconsistent (r :: _) ->
      let repairs = Manager.repairs_for m r.Manager.violation in
      check_bool "repairs offered" true (repairs <> []);
      Manager.rollback m
  | Manager.Inconsistent [] -> Alcotest.fail "impossible"

let test_delete_version_keeps_old () =
  let m = manager_with_cars () in
  Manager.begin_session m;
  (match Evolution.Deletion.delete_type m ~tid:(tid_of m "Person")
           Evolution.Deletion.Version
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "version failed: %s" e);
  expect_consistent m;
  let db = Manager.database m in
  (* old schema intact *)
  check_bool "old Person still there" true
    (Gom.Schema_base.find_type_at db ~type_name:"Person"
       ~schema_name:"CarSchema"
    <> None);
  (* new version lacks Person *)
  let new_sid = Option.get (Gom.Schema_base.find_schema db ~name:"CarSchema_v") in
  check_bool "no Person in new version" true
    (Gom.Schema_base.find_type db ~sid:new_sid ~name:"Person" = None);
  check_int "three types in new version" 3
    (List.length (Gom.Schema_base.types_of_schema db ~sid:new_sid))

(* ------------------------------------------------------------------ *)
(* Version derivation and automatic masking                             *)
(* ------------------------------------------------------------------ *)

let test_derive_schema_version () =
  let m = manager_with_cars () in
  Manager.begin_session m;
  let mapping =
    Evolution.Versions.derive_schema_version m ~from_name:"CarSchema"
      ~new_name:"CarSchemaV2"
  in
  expect_consistent m;
  check_int "four types mapped" 4 (List.length mapping);
  let db = Manager.database m in
  List.iter
    (fun (old_tid, new_tid) ->
      check_bool "evolution edge" true
        (Gom.Schema_base.evolutions_of_type db ~tid:old_tid = [ new_tid ]))
    mapping

let test_auto_fashion_identity () =
  let m = manager_with_cars () in
  let rt = Manager.runtime m in
  let person = Runtime.new_object rt ~tid:(tid_of m "Person") in
  Runtime.set rt person ~attr:"age" ~value:(Value.Int 42);
  Manager.begin_session m;
  let mapping =
    Evolution.Versions.derive_schema_version m ~from_name:"CarSchema"
      ~new_name:"CarSchemaV2"
  in
  let old_person = tid_of m "Person" in
  let new_person = List.assoc old_person mapping in
  let missing_attrs, missing_ops =
    Evolution.Versions.auto_fashion m ~old_tid:old_person ~new_tid:new_person
  in
  expect_consistent m;
  check_bool "nothing missing" true (missing_attrs = [] && missing_ops = []);
  (* the old object is substitutable for the new version *)
  let db = Manager.database m in
  check_bool "substitutable" true
    (Runtime.Masking.substitutable db ~actual:old_person ~expected:new_person)

let test_auto_fashion_reports_missing () =
  let m = manager_with_cars () in
  Manager.begin_session m;
  Manager.run_commands m
    {|add schema V2;
      evolve schema CarSchema to V2;
      add type Person to V2;
      add attribute name : string to Person@V2;
      add attribute birthday : date to Person@V2;
      evolve type Person@CarSchema to Person@V2;|};
  let db = Manager.database m in
  let new_person =
    Option.get
      (Gom.Schema_base.find_type_at db ~type_name:"Person" ~schema_name:"V2")
  in
  let missing_attrs, _ =
    Evolution.Versions.auto_fashion m ~old_tid:(tid_of m "Person")
      ~new_tid:new_person
  in
  Alcotest.(check (list string)) "birthday needs manual accessors"
    [ "birthday" ] missing_attrs;
  Manager.rollback m

(* ------------------------------------------------------------------ *)
(* Baselines                                                            *)
(* ------------------------------------------------------------------ *)

let orion_with_cars () =
  let m = manager_with_cars () in
  Baselines.Orion.of_manager m

let test_orion_accepts_simple_ops () =
  let o = orion_with_cars () in
  (match Baselines.Orion.add_class o ~name:"Truck" ~schema:"CarSchema"
           ~supers:[ "Car@CarSchema" ]
   with
  | Baselines.Orion.Accepted -> ()
  | Baselines.Orion.Rejected msgs ->
      Alcotest.failf "rejected: %s" (String.concat "; " msgs));
  match
    Baselines.Orion.rename_class o ~type_at:"Truck@CarSchema" ~new_name:"Lorry"
  with
  | Baselines.Orion.Accepted -> ()
  | Baselines.Orion.Rejected msgs ->
      Alcotest.failf "rename rejected: %s" (String.concat "; " msgs)

let test_orion_rejects_inconsistent_op () =
  let o = orion_with_cars () in
  (* a second type named Car violates name uniqueness and is rejected as a
     whole, leaving the schema unchanged *)
  let m = Baselines.Orion.manager o in
  let before = Datalog.Database.total (Manager.database m) in
  (match Baselines.Orion.add_class o ~name:"Car" ~schema:"CarSchema" ~supers:[]
   with
  | Baselines.Orion.Rejected _ -> ()
  | Baselines.Orion.Accepted -> Alcotest.fail "expected rejection");
  check_int "unchanged" before (Datalog.Database.total (Manager.database m))

let test_orion_cannot_add_argument () =
  let o = orion_with_cars () in
  match Baselines.Orion.add_operation_argument o with
  | Baselines.Orion.Rejected _ -> ()
  | Baselines.Orion.Accepted -> Alcotest.fail "ORION has no such operation"

let test_orion_add_attribute_converts () =
  let o = orion_with_cars () in
  let m = Baselines.Orion.manager o in
  let rt = Manager.runtime m in
  let _car = Runtime.new_object rt ~tid:(tid_of m "Car") in
  match
    Baselines.Orion.add_attribute o ~type_at:"Car@CarSchema" ~name:"fuelType"
      ~domain:"string"
  with
  | Baselines.Orion.Accepted ->
      check_bool "consistent afterwards" true
        (Datalog.Checker.is_consistent (Manager.theory m) (Manager.database m))
  | Baselines.Orion.Rejected msgs ->
      Alcotest.failf "rejected: %s" (String.concat "; " msgs)

let test_orion_drop_class () =
  let o = orion_with_cars () in
  (* dropping a referenced class leaves dangling references: rejected whole *)
  (match Baselines.Orion.drop_class o ~type_at:"Person@CarSchema" with
  | Baselines.Orion.Rejected _ -> ()
  | Baselines.Orion.Accepted -> Alcotest.fail "Person is referenced");
  (* an unreferenced class drops fine *)
  (match
     Baselines.Orion.add_class o ~name:"Scrap" ~schema:"CarSchema" ~supers:[]
   with
  | Baselines.Orion.Accepted -> ()
  | Baselines.Orion.Rejected _ -> Alcotest.fail "add Scrap");
  match Baselines.Orion.drop_class o ~type_at:"Scrap@CarSchema" with
  | Baselines.Orion.Accepted -> ()
  | Baselines.Orion.Rejected msgs ->
      Alcotest.failf "drop rejected: %s" (String.concat "; " msgs)

let test_orion_superclass_ops () =
  let o = orion_with_cars () in
  (match
     Baselines.Orion.add_class o ~name:"Van" ~schema:"CarSchema"
       ~supers:[ "Car@CarSchema" ]
   with
  | Baselines.Orion.Accepted -> ()
  | Baselines.Orion.Rejected _ -> Alcotest.fail "add Van");
  (* dropping the only superclass reattaches to ANY (stays consistent) *)
  (match
     Baselines.Orion.drop_superclass o ~type_at:"Van@CarSchema"
       ~super_at:"Car@CarSchema"
   with
  | Baselines.Orion.Accepted -> ()
  | Baselines.Orion.Rejected msgs ->
      Alcotest.failf "drop superclass rejected: %s" (String.concat "; " msgs));
  (* a cyclic superclass addition is rejected as a whole *)
  match
    Baselines.Orion.add_superclass o ~type_at:"Location@CarSchema"
      ~super_at:"City@CarSchema"
  with
  | Baselines.Orion.Rejected _ -> ()
  | Baselines.Orion.Accepted -> Alcotest.fail "expected cycle rejection"

let test_version_chains () =
  let m = manager_with_cars () in
  Manager.begin_session m;
  ignore
    (Evolution.Versions.derive_schema_version m ~from_name:"CarSchema"
       ~new_name:"V2");
  ignore
    (Evolution.Versions.derive_schema_version m ~from_name:"V2" ~new_name:"V3");
  expect_consistent m;
  let db = Manager.database m in
  let person = tid_of m "Person" in
  let successors = Evolution.Versions.version_successors db ~tid:person in
  check_int "two successors" 2 (List.length successors);
  let last = List.nth successors 1 in
  check_int "two predecessors" 2
    (List.length (Evolution.Versions.version_predecessors db ~tid:last))

let test_give_up_choice () =
  let m = manager_with_cars () in
  Manager.begin_session m;
  Manager.run_commands m "delete type Person@CarSchema;";
  (match
     Manager.end_session_with m ~choose:(fun _ _ -> Manager.Give_up)
   with
  | Manager.Inconsistent _ -> ()
  | Manager.Consistent -> Alcotest.fail "expected to give up inconsistent");
  (* the session is still open for manual fixing *)
  check_bool "session open" true (Manager.in_session m);
  Manager.rollback m

let test_encore_masking_lazy () =
  let e = Baselines.Encore.create ~attrs:[ "age" ] in
  let o1 = Baselines.Encore.new_object e in
  Baselines.Encore.write e o1 ~attr:"age" (Value.Int 30);
  (* schema change touches no object *)
  Baselines.Encore.add_attribute e ~attr:"birthday" ~handler:(fun o ->
      match Baselines.Encore.read e o ~attr:"age" with
      | Value.Int age -> Value.Int (1993 - age)
      | _ -> Value.Null);
  let o2 = Baselines.Encore.new_object e in
  Baselines.Encore.write e o2 ~attr:"birthday" (Value.Int 1970);
  (* old object masked, new object direct *)
  check_bool "masked read" true
    (Value.equal (Baselines.Encore.read e o1 ~attr:"birthday") (Value.Int 1963));
  check_bool "direct read" true
    (Value.equal (Baselines.Encore.read e o2 ~attr:"birthday") (Value.Int 1970));
  check_int "two versions" 2 (Baselines.Encore.version_count e)

let test_o2_conversion_eager () =
  let o2 = Baselines.O2_conversion.create ~attrs:[ "age" ] in
  let objs = List.init 10 (fun _ -> Baselines.O2_conversion.new_object o2) in
  List.iter
    (fun o -> Baselines.O2_conversion.write o2 o ~attr:"age" (Value.Int 30))
    objs;
  Baselines.O2_conversion.add_attribute o2 ~attr:"birthday" ~fill:(fun o ->
      match Baselines.O2_conversion.read o2 o ~attr:"age" with
      | Value.Int age -> Value.Int (1993 - age)
      | _ -> Value.Null);
  List.iter
    (fun o ->
      check_bool "converted" true
        (Value.equal
           (Baselines.O2_conversion.read o2 o ~attr:"birthday")
           (Value.Int 1963)))
    objs

let suite =
  [
    ( "evolution.complex",
      [
        Alcotest.test_case "add operation argument" `Quick
          test_add_operation_argument;
        Alcotest.test_case "rewritten code runs" `Quick
          test_add_argument_rewritten_code_still_runs;
        Alcotest.test_case "half-done change caught" `Quick
          test_half_done_add_argument_is_caught;
        Alcotest.test_case "delete hierarchy node" `Quick test_delete_hierarchy_node;
        Alcotest.test_case "pull up attribute" `Quick test_pull_up_attribute;
        Alcotest.test_case "split type operator" `Quick test_split_type_operator;
      ] );
    ( "evolution.deletion",
      [
        Alcotest.test_case "restrict refuses referenced" `Quick
          test_delete_restrict_refuses_referenced;
        Alcotest.test_case "restrict accepts unreferenced" `Quick
          test_delete_restrict_accepts_unreferenced;
        Alcotest.test_case "cascade" `Quick test_delete_cascade;
        Alcotest.test_case "retarget" `Quick test_delete_retarget;
        Alcotest.test_case "defer generates repairs" `Quick
          test_delete_defer_generates_repairs;
        Alcotest.test_case "version keeps old" `Quick test_delete_version_keeps_old;
      ] );
    ( "evolution.versions",
      [
        Alcotest.test_case "derive schema version" `Quick test_derive_schema_version;
        Alcotest.test_case "auto fashion identity" `Quick test_auto_fashion_identity;
        Alcotest.test_case "auto fashion reports missing" `Quick
          test_auto_fashion_reports_missing;
      ] );
    ( "baselines.orion",
      [
        Alcotest.test_case "accepts simple ops" `Quick test_orion_accepts_simple_ops;
        Alcotest.test_case "rejects inconsistent op" `Quick
          test_orion_rejects_inconsistent_op;
        Alcotest.test_case "cannot add argument" `Quick test_orion_cannot_add_argument;
        Alcotest.test_case "add attribute converts" `Quick
          test_orion_add_attribute_converts;
        Alcotest.test_case "drop class" `Quick test_orion_drop_class;
        Alcotest.test_case "superclass operations" `Quick
          test_orion_superclass_ops;
      ] );
    ( "evolution.misc",
      [
        Alcotest.test_case "version chains" `Quick test_version_chains;
        Alcotest.test_case "give up keeps session open" `Quick
          test_give_up_choice;
      ] );
    ( "baselines.cures",
      [
        Alcotest.test_case "encore lazy masking" `Quick test_encore_masking_lazy;
        Alcotest.test_case "o2 eager conversion" `Quick test_o2_conversion_eager;
      ] );
  ]

let () = Alcotest.run "evolution" suite
