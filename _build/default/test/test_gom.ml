(* Tests for the GOM schema model: the section 3 constraints on the paper's
   running example, including the fuelType repair scenario of section 3.5. *)

open Datalog
open Gom

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let core_theory () =
  let t = Theory.create () in
  Model.install_core t;
  t

let full_theory () =
  let t = core_theory () in
  Versioning.install t;
  Fashion.install t;
  Subschema.install t;
  t

let consistent t db = Checker.check t db = []

let violated_names t db =
  Checker.check t db
  |> List.map (fun v -> v.Checker.constraint_name)
  |> List.sort_uniq String.compare

(* ------------------------------------------------------------------ *)
(* Identifier generation                                                *)
(* ------------------------------------------------------------------ *)

let test_ids_fresh () =
  let gen = Ids.create () in
  Alcotest.(check string) "first type" "tid_1" (Ids.fresh gen Ids.Type);
  Alcotest.(check string) "second type" "tid_2" (Ids.fresh gen Ids.Type);
  Alcotest.(check string) "first schema" "sid_1" (Ids.fresh gen Ids.Schema);
  Alcotest.(check bool) "kind" true (Ids.kind_of "tid_2" = Some Ids.Type);
  Alcotest.(check bool) "unknown kind" true (Ids.kind_of "xyz" = None)

(* ------------------------------------------------------------------ *)
(* The running example is consistent                                    *)
(* ------------------------------------------------------------------ *)

let test_example_consistent () =
  let t = core_theory () in
  let db = Example.database () in
  let viols = Checker.check t db in
  if viols <> [] then
    Alcotest.failf "unexpected violations: %a"
      Fmt.(list ~sep:comma Checker.pp_violation)
      viols

let test_example_consistent_full_theory () =
  let t = full_theory () in
  check_bool "consistent" true (consistent t (Example.database ()))

(* ------------------------------------------------------------------ *)
(* Schema constraints fire on seeded inconsistencies                    *)
(* ------------------------------------------------------------------ *)

let expect_violation seed expected =
  let t = core_theory () in
  let db = Example.database () in
  seed db;
  let names = violated_names t db in
  if not (List.mem expected names) then
    Alcotest.failf "expected %s among violations %a" expected
      Fmt.(list ~sep:comma string)
      names

let test_duplicate_type_name () =
  expect_violation
    (fun db ->
      ignore
        (Database.add db
           (Preds.type_fact ~tid:"tid_99" ~name:"Person" ~sid:Example.sid_car));
      ignore
        (Database.add db
           (Preds.subtyprel_fact ~sub:"tid_99" ~super:Builtin.any_tid)))
    "uniq$TypeNameInSchema"

let test_dangling_attr_domain () =
  expect_violation
    (fun db ->
      ignore
        (Database.add db
           (Preds.attr_fact ~tid:Example.tid_car ~name:"ghost"
              ~domain:"tid_nonexistent")))
    "ri$Attr_Domain"

let test_decl_without_code () =
  expect_violation
    (fun db ->
      ignore
        (Database.add db
           (Preds.decl_fact ~did:"did_99" ~receiver:Example.tid_car
              ~name:"honk" ~result:"tid_void")))
    "exist$DeclHasCode"

let test_subtype_cycle () =
  expect_violation
    (fun db ->
      ignore
        (Database.add db
           (Preds.subtyprel_fact ~sub:Example.tid_location
              ~super:Example.tid_city)))
    "acyclic$SubTypRel"

let test_type_disconnected_from_any () =
  expect_violation
    (fun db ->
      ignore
        (Database.add db
           (Preds.type_fact ~tid:"tid_99" ~name:"Orphan" ~sid:Example.sid_car)))
    "root$ANY"

let test_inherited_attr_codomain_conflict () =
  (* City inherits name : string via its own declaration and would conflict
     with a second name attribute of a different domain introduced on
     Location. *)
  expect_violation
    (fun db ->
      ignore
        (Database.add db
           (Preds.attr_fact ~tid:Example.tid_location ~name:"name"
              ~domain:"tid_int")))
    "mi$AttrCodomain"

let test_multiple_inheritance_conflict () =
  (* A type inheriting distance from both Location and City without refining
     it: the two distinct inherited declarations need a common refinement. *)
  expect_violation
    (fun db ->
      let add f = ignore (Database.add db f) in
      add (Preds.type_fact ~tid:"tid_99" ~name:"Amphibian" ~sid:Example.sid_car);
      add (Preds.subtyprel_fact ~sub:"tid_99" ~super:Example.tid_location);
      add (Preds.subtyprel_fact ~sub:"tid_99" ~super:Example.tid_car);
      (* give Car a distance operation of its own *)
      add
        (Preds.decl_fact ~did:"did_99" ~receiver:Example.tid_car
           ~name:"distance" ~result:"tid_float");
      add (Preds.code_fact ~cid:"cid_99" ~text:"!!" ~did:"did_99"))
    "mi$DeclConflict"

let test_refinement_result_not_subtype () =
  (* distance@City returning string would break contravariance. *)
  expect_violation
    (fun db ->
      ignore
        (Database.remove db
           (Preds.decl_fact ~did:Example.did_distance_city
              ~receiver:Example.tid_city ~name:"distance" ~result:"tid_float"));
      ignore
        (Database.add db
           (Preds.decl_fact ~did:Example.did_distance_city
              ~receiver:Example.tid_city ~name:"distance" ~result:"tid_string")))
    "refine$Contravariance"

let test_refinement_missing_argument () =
  expect_violation
    (fun db ->
      ignore
        (Database.remove db
           (Preds.argdecl_fact ~did:Example.did_distance_city ~pos:1
              ~tid:Example.tid_location)))
    "refine$Contravariance"

let test_refinement_extra_argument () =
  expect_violation
    (fun db ->
      ignore
        (Database.add db
           (Preds.argdecl_fact ~did:Example.did_distance_city ~pos:2
              ~tid:"tid_int")))
    "refine$Contravariance"

let test_refinement_name_mismatch () =
  expect_violation
    (fun db ->
      let add f = ignore (Database.add db f) in
      add
        (Preds.decl_fact ~did:"did_99" ~receiver:Example.tid_city ~name:"far"
           ~result:"tid_float");
      add (Preds.code_fact ~cid:"cid_99" ~text:"!!" ~did:"did_99");
      add
        (Preds.declrefinement_fact ~refining:"did_99"
           ~refined:Example.did_distance_location))
    "refine$Contravariance"

let test_code_requires_missing_decl () =
  expect_violation
    (fun db ->
      ignore
        (Database.add db
           (Preds.codereqdecl_fact ~cid:Example.cid_changelocation
              ~did:"did_nonexistent")))
    "ri$CodeReqDecl_Decl"

let test_code_requires_missing_attr () =
  expect_violation
    (fun db ->
      ignore
        (Database.add db
           (Preds.codereqattr_fact ~cid:Example.cid_changelocation
              ~tid:Example.tid_car ~attr_name:"fuelType")))
    "ri$CodeReqAttr_Attr"

let test_inherited_attr_access_ok () =
  (* City code accessing longi (inherited from Location) is consistent. *)
  let t = core_theory () in
  let db = Example.database () in
  ignore
    (Database.add db
       (Preds.codereqattr_fact ~cid:Example.cid_distance_city
          ~tid:Example.tid_city ~attr_name:"longi"));
  check_bool "inherited access fine" true (consistent t db)

(* ------------------------------------------------------------------ *)
(* Object constraints                                                   *)
(* ------------------------------------------------------------------ *)

let test_two_phreps_for_type () =
  expect_violation
    (fun db ->
      ignore
        (Database.add db (Preds.phrep_fact ~clid:"clid_99" ~tid:Example.tid_car)))
    "uniq$PhRepPerType"

let test_missing_slot_for_new_attr () =
  expect_violation
    (fun db ->
      ignore
        (Database.add db
           (Preds.attr_fact ~tid:Example.tid_car ~name:"fuelType"
              ~domain:"tid_string")))
    "star$SlotForEveryAttr"

let test_missing_slot_for_inherited_attr () =
  (* A new attribute on Location must also be represented in City objects. *)
  let t = core_theory () in
  let db = Example.database () in
  ignore
    (Database.add db
       (Preds.attr_fact ~tid:Example.tid_location ~name:"altitude"
          ~domain:"tid_float"));
  let viols =
    Checker.check t db
    |> List.filter (fun v -> v.Checker.constraint_name = "star$SlotForEveryAttr")
  in
  (* both the Location representation and the City representation lack it *)
  check_int "two representations affected" 2 (List.length viols)

(* ------------------------------------------------------------------ *)
(* The section 3.5 repair scenario                                      *)
(* ------------------------------------------------------------------ *)

let test_fueltype_repairs_match_paper () =
  let t = core_theory () in
  let db = Example.database () in
  ignore
    (Database.add db
       (Preds.attr_fact ~tid:Example.tid_car ~name:"fuelType"
          ~domain:"tid_string"));
  let materialized = Checker.materialize t db in
  let viols =
    Checker.violations_of t materialized
    |> List.filter (fun v -> v.Checker.constraint_name = "star$SlotForEveryAttr")
  in
  check_int "one violation" 1 (List.length viols);
  let repairs = Repair.generate t materialized (List.hd viols) in
  let has r = List.exists (Repair.equal r) repairs in
  (* Repair 1 of the paper: -Attr_i(tid_4, fuelType, tid_string), which at
     the base level is deleting the Attr fact. *)
  check_bool "repair 1: undo the attribute addition" true
    (has
       [
         Repair.Del
           (Preds.attr_fact ~tid:Example.tid_car ~name:"fuelType"
              ~domain:"tid_string");
       ]);
  (* Repair 2: -PhRep(clid_4, tid_4), i.e. delete all cars. *)
  check_bool "repair 2: delete all cars" true
    (has
       [ Repair.Del (Preds.phrep_fact ~clid:Example.clid_car ~tid:Example.tid_car) ]);
  (* Repair 3: +Slot(clid_4, fuelType, clid_string) — the conversion. *)
  check_bool "repair 3: conversion adds the slot" true
    (has
       [
         Repair.Add
           (Preds.slot_fact ~clid:Example.clid_car ~attr_name:"fuelType"
              ~value_clid:"clid_string");
       ])

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_fueltype_repair_explanations () =
  let db = Example.database () in
  let s =
    Explain.explain_action db
      (Repair.Del (Preds.phrep_fact ~clid:Example.clid_car ~tid:Example.tid_car))
  in
  check_bool "mentions deleting instances" true
    (contains s "delete ALL instances of type Car");
  let s2 =
    Explain.explain_action db
      (Repair.Add
         (Preds.slot_fact ~clid:Example.clid_car ~attr_name:"fuelType"
            ~value_clid:"clid_string"))
  in
  check_bool "mentions conversion" true (contains s2 "conversion")

(* ------------------------------------------------------------------ *)
(* Versioning constraints                                               *)
(* ------------------------------------------------------------------ *)

let with_new_schema db =
  ignore (Database.add db (Preds.schema_fact ~sid:"sid_2" ~name:"NewCarSchema"));
  ignore
    (Database.add db
       (Preds.type_fact ~tid:"tid_10" ~name:"Person" ~sid:"sid_2"));
  ignore
    (Database.add db (Preds.subtyprel_fact ~sub:"tid_10" ~super:Builtin.any_tid))

let test_versioning_digestibility () =
  let t = full_theory () in
  let db = Example.database () in
  with_new_schema db;
  (* type evolution without schema evolution violates digestibility *)
  ignore
    (Database.add db
       (Preds.evolves_to_t_fact ~from_tid:Example.tid_person ~to_tid:"tid_10"));
  check_bool "digestibility violated" true
    (List.mem "digest$TypeEvolution" (violated_names t db));
  ignore
    (Database.add db
       (Preds.evolves_to_s_fact ~from_sid:Example.sid_car ~to_sid:"sid_2"));
  check_bool "consistent with schema evolution" true (consistent t db)

let test_versioning_acyclic () =
  let t = full_theory () in
  let db = Example.database () in
  with_new_schema db;
  ignore
    (Database.add db
       (Preds.evolves_to_s_fact ~from_sid:Example.sid_car ~to_sid:"sid_2"));
  ignore
    (Database.add db
       (Preds.evolves_to_s_fact ~from_sid:"sid_2" ~to_sid:Example.sid_car));
  check_bool "cycle detected" true
    (List.mem "acyclic$evolves_to_S" (violated_names t db))

(* ------------------------------------------------------------------ *)
(* Fashion constraints                                                  *)
(* ------------------------------------------------------------------ *)

let test_fashion_requires_versions () =
  let t = full_theory () in
  let db = Example.database () in
  with_new_schema db;
  ignore
    (Database.add db
       (Preds.fashiontype_fact ~masked:Example.tid_person ~target:"tid_10"));
  check_bool "fashion without version edge rejected" true
    (List.mem "fashion$OnlyBetweenVersions" (violated_names t db))

let test_fashion_completeness () =
  let t = full_theory () in
  let db = Example.database () in
  with_new_schema db;
  ignore
    (Database.add db
       (Preds.attr_fact ~tid:"tid_10" ~name:"birthday" ~domain:"tid_date"));
  ignore
    (Database.add db
       (Preds.slot_fact ~clid:"clid_99" ~attr_name:"birthday"
          ~value_clid:"clid_date"));
  ignore (Database.add db (Preds.phrep_fact ~clid:"clid_99" ~tid:"tid_10"));
  ignore
    (Database.add db
       (Preds.evolves_to_s_fact ~from_sid:Example.sid_car ~to_sid:"sid_2"));
  ignore
    (Database.add db
       (Preds.evolves_to_t_fact ~from_tid:Example.tid_person ~to_tid:"tid_10"));
  ignore
    (Database.add db
       (Preds.fashiontype_fact ~masked:Example.tid_person ~target:"tid_10"));
  (* incomplete: birthday not imitated *)
  check_bool "attr completeness violated" true
    (List.mem "fashion$AttrComplete" (violated_names t db));
  ignore
    (Database.add db
       (Preds.fashionattr_fact ~owner_tid:"tid_10" ~attr_name:"birthday"
          ~masked_tid:Example.tid_person ~read_cid:"cid_90" ~write_cid:"cid_91"));
  check_bool "complete now" true
    (not (List.mem "fashion$AttrComplete" (violated_names t db)))

let test_fashion_install_requires_versioning () =
  let t = core_theory () in
  check_bool "refuses without versioning" true
    (try
       Fashion.install t;
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Subschema constraints                                                *)
(* ------------------------------------------------------------------ *)

let test_subschema_tree () =
  let t = full_theory () in
  let db = Example.database () in
  with_new_schema db;
  ignore
    (Database.add db
       (Preds.subschemarel_fact ~child:"sid_2" ~parent:Example.sid_car));
  check_bool "tree ok" true (consistent t db);
  ignore
    (Database.add db
       (Preds.subschemarel_fact ~child:Example.sid_car ~parent:"sid_2"));
  check_bool "cycle rejected" true
    (List.mem "acyclic$SubSchemaRel" (violated_names t db))

let test_describe_covers_all_predicates () =
  (* every base predicate of the full theory gets a meaningful description:
     none falls back to the raw fact rendering *)
  let db = Example.database () in
  ignore (Database.add db (Preds.schema_fact ~sid:"sid_2" ~name:"V2"));
  let samples =
    [
      Preds.schema_fact ~sid:"sid_2" ~name:"V2";
      Preds.type_fact ~tid:"tid_9" ~name:"X" ~sid:Example.sid_car;
      Preds.attr_fact ~tid:Example.tid_car ~name:"a" ~domain:"tid_int";
      Preds.decl_fact ~did:"did_9" ~receiver:Example.tid_car ~name:"f"
        ~result:"tid_int";
      Preds.argdecl_fact ~did:Example.did_changelocation ~pos:1
        ~tid:Example.tid_person;
      Preds.code_fact ~cid:"cid_9" ~text:"!!" ~did:Example.did_changelocation;
      Preds.subtyprel_fact ~sub:Example.tid_city ~super:Example.tid_location;
      Preds.declrefinement_fact ~refining:Example.did_distance_city
        ~refined:Example.did_distance_location;
      Preds.codereqdecl_fact ~cid:"cid_9" ~did:Example.did_distance_location;
      Preds.codereqattr_fact ~cid:"cid_9" ~tid:Example.tid_car ~attr_name:"owner";
      Preds.phrep_fact ~clid:"clid_9" ~tid:Example.tid_car;
      Preds.slot_fact ~clid:Example.clid_car ~attr_name:"owner"
        ~value_clid:Example.clid_person;
      Preds.evolves_to_s_fact ~from_sid:Example.sid_car ~to_sid:"sid_2";
      Preds.evolves_to_t_fact ~from_tid:Example.tid_person ~to_tid:Example.tid_city;
      Preds.fashiontype_fact ~masked:Example.tid_person ~target:Example.tid_city;
      Preds.fashiondecl_fact ~did:Example.did_distance_city
        ~tid:Example.tid_person ~cid:"cid_9";
      Preds.fashionattr_fact ~owner_tid:Example.tid_city ~attr_name:"name"
        ~masked_tid:Example.tid_person ~read_cid:"cid_9" ~write_cid:"cid_9";
      Preds.subschemarel_fact ~child:"sid_2" ~parent:Example.sid_car;
      Preds.imports_fact ~importer:"sid_2" ~imported:Example.sid_car;
      Preds.public_comp_fact ~sid:Example.sid_car ~kind:"type" ~name:"Car";
      Preds.schemavar_fact ~sid:Example.sid_car ~name:"v" ~tid:Example.tid_car;
    ]
  in
  List.iter
    (fun f ->
      let s = Explain.describe db f in
      if contains s "fact " then
        Alcotest.failf "no tailored description for %s"
          (Datalog.Fact.to_string f))
    samples

(* ------------------------------------------------------------------ *)
(* Optional constraint bundles                                          *)
(* ------------------------------------------------------------------ *)

let test_bundle_single_inheritance () =
  let t = full_theory () in
  let db = Example.database () in
  let seed db =
    let add f = ignore (Database.add db f) in
    add (Preds.type_fact ~tid:"tid_99" ~name:"Amphibian" ~sid:Example.sid_car);
    add (Preds.subtyprel_fact ~sub:"tid_99" ~super:Example.tid_location);
    add (Preds.subtyprel_fact ~sub:"tid_99" ~super:Example.tid_person)
  in
  seed db;
  (* multiple inheritance is fine in the core model (no conflicts here) *)
  check_bool "core accepts MI" true (consistent t db);
  Extensions.install t Extensions.single_inheritance;
  check_bool "bundle rejects MI" true
    (List.mem "x$SingleInheritance" (violated_names t db));
  Extensions.remove t Extensions.single_inheritance;
  check_bool "removable" true (consistent t db)

let test_bundle_strict_slots () =
  let t = full_theory () in
  let db = Example.database () in
  ignore
    (Database.add db
       (Preds.slot_fact ~clid:Example.clid_person ~attr_name:"stale"
          ~value_clid:"clid_int"));
  check_bool "core tolerates stale slot" true (consistent t db);
  Extensions.install t Extensions.strict_slots;
  check_bool "bundle flags stale slot" true
    (List.mem "x$SlotHasAttr" (violated_names t db))

let test_bundle_no_empty_types () =
  let t = full_theory () in
  let db = Example.database () in
  Extensions.install t Extensions.no_empty_types;
  check_bool "example types all have members" true (consistent t db);
  ignore
    (Database.add db (Preds.type_fact ~tid:"tid_99" ~name:"Shell" ~sid:Example.sid_car));
  ignore
    (Database.add db (Preds.subtyprel_fact ~sub:"tid_99" ~super:Builtin.any_tid));
  check_bool "empty shell flagged" true
    (List.mem "x$TypeHasMember" (violated_names t db))

let test_bundle_layered_calls () =
  let t = full_theory () in
  let db = Example.database () in
  Extensions.install t Extensions.layered_calls;
  (* all CarSchema-internal calls are fine *)
  check_bool "same-schema calls fine" true (consistent t db);
  (* a type in another schema whose code calls distance without importing *)
  let add f = ignore (Database.add db f) in
  add (Preds.schema_fact ~sid:"sid_2" ~name:"Other");
  add (Preds.type_fact ~tid:"tid_10" ~name:"Caller" ~sid:"sid_2");
  add (Preds.subtyprel_fact ~sub:"tid_10" ~super:Builtin.any_tid);
  add (Preds.decl_fact ~did:"did_99" ~receiver:"tid_10" ~name:"go" ~result:"tid_float");
  add (Preds.code_fact ~cid:"cid_99" ~text:"!!" ~did:"did_99");
  add (Preds.codereqdecl_fact ~cid:"cid_99" ~did:Example.did_distance_location);
  check_bool "cross-schema call flagged" true
    (List.mem "x$LayeredCalls" (violated_names t db));
  add (Preds.imports_fact ~importer:"sid_2" ~imported:Example.sid_car);
  check_bool "import legalizes the call" true (consistent t db)

(* ------------------------------------------------------------------ *)
(* Schema base queries                                                  *)
(* ------------------------------------------------------------------ *)

let test_find_type_at () =
  let db = Example.database () in
  check_bool "Person@CarSchema" true
    (Schema_base.find_type_at db ~type_name:"Person" ~schema_name:"CarSchema"
    = Some Example.tid_person);
  check_bool "missing type" true
    (Schema_base.find_type_at db ~type_name:"Robot" ~schema_name:"CarSchema"
    = None)

let test_inherited_attrs () =
  let db = Example.database () in
  let attrs = Schema_base.all_attrs db ~tid:Example.tid_city in
  check_int "city has four attributes" 4 (List.length attrs);
  check_bool "longi inherited" true (List.mem_assoc "longi" attrs);
  check_bool "own name" true (List.mem_assoc "name" attrs)

let test_dynamic_binding_resolution () =
  let db = Example.database () in
  (* distance on City resolves to the refinement, on Location to the base *)
  let d_city =
    Option.get (Schema_base.resolve_decl db ~tid:Example.tid_city ~name:"distance")
  in
  Alcotest.(check string) "city decl" Example.did_distance_city
    d_city.Schema_base.did;
  let d_loc =
    Option.get
      (Schema_base.resolve_decl db ~tid:Example.tid_location ~name:"distance")
  in
  Alcotest.(check string) "location decl" Example.did_distance_location
    d_loc.Schema_base.did

let test_supertypes_bfs () =
  let db = Example.database () in
  Alcotest.(check (list string)) "city supertypes"
    [ Example.tid_location; Builtin.any_tid ]
    (Schema_base.supertypes db ~tid:Example.tid_city)

let test_is_subtype () =
  let db = Example.database () in
  check_bool "city <= location" true
    (Schema_base.is_subtype db ~sub:Example.tid_city ~super:Example.tid_location);
  check_bool "location </= city" false
    (Schema_base.is_subtype db ~sub:Example.tid_location ~super:Example.tid_city)

let suite =
  [
    "gom.ids", [ Alcotest.test_case "fresh ids" `Quick test_ids_fresh ];
    ( "gom.example",
      [
        Alcotest.test_case "example consistent (core)" `Quick
          test_example_consistent;
        Alcotest.test_case "example consistent (full)" `Quick
          test_example_consistent_full_theory;
      ] );
    ( "gom.schema_constraints",
      [
        Alcotest.test_case "duplicate type name" `Quick test_duplicate_type_name;
        Alcotest.test_case "dangling attr domain" `Quick test_dangling_attr_domain;
        Alcotest.test_case "decl without code" `Quick test_decl_without_code;
        Alcotest.test_case "subtype cycle" `Quick test_subtype_cycle;
        Alcotest.test_case "type disconnected from ANY" `Quick
          test_type_disconnected_from_any;
        Alcotest.test_case "inherited attr codomain conflict" `Quick
          test_inherited_attr_codomain_conflict;
        Alcotest.test_case "multiple inheritance conflict" `Quick
          test_multiple_inheritance_conflict;
        Alcotest.test_case "refinement result not subtype" `Quick
          test_refinement_result_not_subtype;
        Alcotest.test_case "refinement missing argument" `Quick
          test_refinement_missing_argument;
        Alcotest.test_case "refinement extra argument" `Quick
          test_refinement_extra_argument;
        Alcotest.test_case "refinement name mismatch" `Quick
          test_refinement_name_mismatch;
        Alcotest.test_case "code requires missing decl" `Quick
          test_code_requires_missing_decl;
        Alcotest.test_case "code requires missing attr" `Quick
          test_code_requires_missing_attr;
        Alcotest.test_case "inherited attr access ok" `Quick
          test_inherited_attr_access_ok;
      ] );
    ( "gom.object_constraints",
      [
        Alcotest.test_case "two phreps for a type" `Quick test_two_phreps_for_type;
        Alcotest.test_case "missing slot for new attr" `Quick
          test_missing_slot_for_new_attr;
        Alcotest.test_case "missing slot for inherited attr" `Quick
          test_missing_slot_for_inherited_attr;
      ] );
    ( "gom.repairs",
      [
        Alcotest.test_case "fuelType repairs match the paper" `Quick
          test_fueltype_repairs_match_paper;
        Alcotest.test_case "repair explanations" `Quick
          test_fueltype_repair_explanations;
        Alcotest.test_case "describe covers all predicates" `Quick
          test_describe_covers_all_predicates;
      ] );
    ( "gom.versioning",
      [
        Alcotest.test_case "digestibility" `Quick test_versioning_digestibility;
        Alcotest.test_case "acyclic versions" `Quick test_versioning_acyclic;
      ] );
    ( "gom.fashion",
      [
        Alcotest.test_case "requires version edge" `Quick
          test_fashion_requires_versions;
        Alcotest.test_case "completeness" `Quick test_fashion_completeness;
        Alcotest.test_case "install requires versioning" `Quick
          test_fashion_install_requires_versioning;
      ] );
    "gom.subschema", [ Alcotest.test_case "tree" `Quick test_subschema_tree ];
    ( "gom.extensions",
      [
        Alcotest.test_case "single inheritance bundle" `Quick
          test_bundle_single_inheritance;
        Alcotest.test_case "strict slots bundle" `Quick test_bundle_strict_slots;
        Alcotest.test_case "no empty types bundle" `Quick
          test_bundle_no_empty_types;
        Alcotest.test_case "layered calls bundle" `Quick test_bundle_layered_calls;
      ] );
    ( "gom.schema_base",
      [
        Alcotest.test_case "find type at" `Quick test_find_type_at;
        Alcotest.test_case "inherited attrs" `Quick test_inherited_attrs;
        Alcotest.test_case "dynamic binding" `Quick test_dynamic_binding_resolution;
        Alcotest.test_case "supertypes bfs" `Quick test_supertypes_bfs;
        Alcotest.test_case "is_subtype" `Quick test_is_subtype;
      ] );
  ]

let () = Alcotest.run "gom" suite
