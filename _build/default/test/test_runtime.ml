(* Tests for the Runtime System in isolation: values, the object store, the
   interpreter (arithmetic, control flow, errors), conversion routines, and
   the masking helpers. *)

open Core
module Value = Runtime.Value
module Store = Runtime.Object_store

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let manager_with src =
  let m = Manager.create () in
  Manager.begin_session m;
  Manager.load_definitions m src;
  (match Manager.end_session m with
  | Manager.Consistent -> ()
  | Manager.Inconsistent rs ->
      Alcotest.failf "schema inconsistent: %s"
        (String.concat "; " (List.map (fun r -> r.Manager.description) rs)));
  m

let tid_in m ~schema name =
  Option.get
    (Gom.Schema_base.find_type_at (Manager.database m) ~type_name:name
       ~schema_name:schema)

(* A small computational schema exercising the interpreter. *)
let math_schema =
  {|
schema Math is
  type Calc is
    [ acc : float; count : int; label : string; flag : bool; ]
  operations
    declare gauss : (int) -> int;
    declare mix : (float, float) -> float;
    declare note : (string) -> string;
    declare classify : (int) -> string;
    declare crash : -> int;
    declare useglobal : -> int;
  implementation
    define gauss(n) is
    begin
      var total : int := 0;
      var i : int := 0;
      while (i <= n)
      begin
        total := total + i;
        i := i + 1;
      end
      return total;
    end gauss;
    define mix(a, b) is
    begin
      self.acc := a * 2.0 + b / 4.0 - 1.0;
      return self.acc;
    end mix;
    define note(s) is
    begin
      self.label := self.label + ", " + s;
      return self.label;
    end note;
    define classify(n) is
    begin
      if (n < 0) return "negative";
      if (n == 0) return "zero";
      if (n < 10 and not (n == 5)) return "small";
      if (n == 5 or n >= 100) return "special";
      return "large";
    end classify;
    define crash is
    begin
      return 1 / 0;
    end crash;
    define useglobal is
    begin
      return counter + 1;
    end useglobal;
  end type Calc;
  var counter : int;
end schema Math;
|}

let calc () =
  let m = manager_with math_schema in
  let rt = Manager.runtime m in
  let c = Runtime.new_object rt ~tid:(tid_in m ~schema:"Math" "Calc") in
  m, rt, c

(* ------------------------------------------------------------------ *)
(* Values                                                               *)
(* ------------------------------------------------------------------ *)

let test_value_equal_numeric () =
  check_bool "int/float equal" true (Value.equal (Value.Int 2) (Value.Float 2.0));
  check_bool "int/float unequal" false
    (Value.equal (Value.Int 2) (Value.Float 2.5));
  check_bool "enum equality" true
    (Value.equal (Value.Enum ("t", "a")) (Value.Enum ("t", "a")));
  check_bool "enum of other sort" false
    (Value.equal (Value.Enum ("t", "a")) (Value.Enum ("u", "a")))

let test_value_truthiness () =
  check_bool "null falsy" false (Value.truthy Value.Null);
  check_bool "zero falsy" false (Value.truthy (Value.Int 0));
  check_bool "obj truthy" true (Value.truthy (Value.Obj "oid_1"));
  check_bool "empty string falsy" false (Value.truthy (Value.Str ""))

let test_value_defaults () =
  check_bool "int" true (Value.default_for ~domain_tid:"tid_int" = Value.Int 0);
  check_bool "string" true
    (Value.default_for ~domain_tid:"tid_string" = Value.Str "");
  check_bool "object" true (Value.default_for ~domain_tid:"tid_42" = Value.Null)

(* ------------------------------------------------------------------ *)
(* Object store                                                         *)
(* ------------------------------------------------------------------ *)

let test_store_snapshot_restore () =
  let s = Store.create () in
  let o = Store.insert s ~tid:"tid_1" ~slots:[ "a", Value.Int 1 ] in
  let snap = Store.snapshot s in
  Store.set_slot o "a" (Value.Int 99);
  ignore (Store.insert s ~tid:"tid_1" ~slots:[]);
  Store.restore s ~from:snap;
  check_int "count restored" 1 (Store.cardinal s);
  let o' = Option.get (Store.find s o.Store.oid) in
  check_bool "slot restored" true (Store.get_slot o' "a" = Some (Value.Int 1))

let test_store_type_index () =
  let s = Store.create () in
  ignore (Store.insert s ~tid:"tid_1" ~slots:[]);
  ignore (Store.insert s ~tid:"tid_2" ~slots:[]);
  ignore (Store.insert s ~tid:"tid_1" ~slots:[]);
  check_int "by type" 2 (Store.count_of_type s ~tid:"tid_1");
  check_int "total" 3 (Store.cardinal s)

(* ------------------------------------------------------------------ *)
(* Interpreter                                                          *)
(* ------------------------------------------------------------------ *)

let test_interp_while_loop () =
  let _, rt, c = calc () in
  let r = Runtime.send rt c ~op:"gauss" ~args:[ Value.Int 100 ] in
  check_bool "gauss 100" true (Value.equal r (Value.Int 5050))

let test_interp_float_arithmetic () =
  let _, rt, c = calc () in
  let r = Runtime.send rt c ~op:"mix" ~args:[ Value.Float 3.0; Value.Float 8.0 ] in
  check_bool "3*2 + 8/4 - 1 = 7" true (Value.equal r (Value.Float 7.0));
  check_bool "slot written" true
    (Value.equal (Runtime.get rt c ~attr:"acc") (Value.Float 7.0))

let test_interp_string_concat () =
  let _, rt, c = calc () in
  Runtime.set rt c ~attr:"label" ~value:(Value.Str "start");
  let r = Runtime.send rt c ~op:"note" ~args:[ Value.Str "more" ] in
  check_bool "concatenated" true (Value.equal r (Value.Str "start, more"))

let test_interp_boolean_logic () =
  let _, rt, c = calc () in
  let classify n = Runtime.send rt c ~op:"classify" ~args:[ Value.Int n ] in
  check_bool "negative" true (Value.equal (classify (-3)) (Value.Str "negative"));
  check_bool "zero" true (Value.equal (classify 0) (Value.Str "zero"));
  check_bool "small" true (Value.equal (classify 3) (Value.Str "small"));
  check_bool "five is special" true (Value.equal (classify 5) (Value.Str "special"));
  check_bool "hundred special" true (Value.equal (classify 150) (Value.Str "special"));
  check_bool "large" true (Value.equal (classify 42) (Value.Str "large"))

let test_interp_division_by_zero () =
  let _, rt, c = calc () in
  check_bool "raises" true
    (try
       ignore (Runtime.send rt c ~op:"crash" ~args:[]);
       false
     with Runtime.Error _ -> true)

let test_interp_wrong_arity () =
  let _, rt, c = calc () in
  check_bool "raises" true
    (try
       ignore (Runtime.send rt c ~op:"gauss" ~args:[]);
       false
     with Runtime.Error _ -> true)

let test_interp_unknown_operation () =
  let _, rt, c = calc () in
  check_bool "raises" true
    (try
       ignore (Runtime.send rt c ~op:"fly" ~args:[]);
       false
     with Runtime.Error _ -> true)

let test_interp_global_variable () =
  let _, rt, c = calc () in
  Runtime.set_global rt "counter" (Value.Int 41);
  let r = Runtime.send rt c ~op:"useglobal" ~args:[] in
  check_bool "reads the schema variable" true (Value.equal r (Value.Int 42))

let test_interp_loop_budget () =
  let m = manager_with
    {|
schema Loop is
  type Spinner is [ x : int; ]
  operations
    declare spin : -> int;
  implementation
    define spin is
    begin
      while (true) begin self.x := self.x + 1; end
      return 0;
    end spin;
  end type Spinner;
end schema Loop;
|} in
  let rt = Manager.runtime m in
  let o = Runtime.new_object rt ~tid:(tid_in m ~schema:"Loop" "Spinner") in
  check_bool "budget exceeded" true
    (try
       ignore (Runtime.send rt o ~op:"spin" ~args:[]);
       false
     with Runtime.Error msg ->
       let contains s sub =
         let sl = String.length s and bl = String.length sub in
         let rec go i = i + bl <= sl && (String.sub s i bl = sub || go (i + 1)) in
         go 0
       in
       contains msg "budget")

(* ------------------------------------------------------------------ *)
(* Conversion routines                                                  *)
(* ------------------------------------------------------------------ *)

let car_manager () =
  let m = manager_with Analyzer.Sources.car_schema in
  let rt = Manager.runtime m in
  m, rt

let test_conversion_add_covers_subtypes () =
  let m, rt = car_manager () in
  let location = tid_in m ~schema:"CarSchema" "Location" in
  let city = tid_in m ~schema:"CarSchema" "City" in
  let l = Runtime.new_object rt ~tid:location in
  let c = Runtime.new_object rt ~tid:city in
  Manager.begin_session m;
  Manager.run_commands m "add attribute altitude : float to Location@CarSchema;";
  let n =
    Runtime.Conversion.add_attribute_slots rt ~tid:location ~attr:"altitude"
      ~domain:"tid_float"
      ~fill:(fun _ -> Value.Float 112.0)
  in
  (match Manager.end_session m with
  | Manager.Consistent -> ()
  | Manager.Inconsistent _ -> Alcotest.fail "conversion incomplete");
  check_int "both objects converted" 2 n;
  check_bool "location converted" true
    (Value.equal (Runtime.get rt l ~attr:"altitude") (Value.Float 112.0));
  check_bool "city converted too" true
    (Value.equal (Runtime.get rt c ~attr:"altitude") (Value.Float 112.0))

let test_conversion_drop () =
  let m, rt = car_manager () in
  let person = tid_in m ~schema:"CarSchema" "Person" in
  let p = Runtime.new_object rt ~tid:person in
  Manager.begin_session m;
  Manager.run_commands m "delete attribute age from Person@CarSchema;";
  let n = Runtime.Conversion.drop_attribute_slots rt ~tid:person ~attr:"age" in
  (match Manager.end_session m with
  | Manager.Consistent -> ()
  | Manager.Inconsistent _ -> Alcotest.fail "drop incomplete");
  check_int "one object converted" 1 n;
  check_bool "slot gone" true
    (try
       ignore (Runtime.get rt p ~attr:"age");
       false
     with Runtime.Error _ -> true)

let test_migrate_object () =
  let m, rt = car_manager () in
  let location = tid_in m ~schema:"CarSchema" "Location" in
  let city = tid_in m ~schema:"CarSchema" "City" in
  let l = Runtime.new_object rt ~tid:location in
  Runtime.set rt l ~attr:"longi" ~value:(Value.Float 8.4);
  (match l with
  | Value.Obj oid ->
      let db = Manager.database m in
      check_bool "migrated" true
        (Runtime.Conversion.migrate_object rt ~oid ~to_tid:city
           ~init:(Runtime.Conversion.keep_or_default db ~to_tid:city));
      let o = Option.get (Runtime.find_object rt oid) in
      check_bool "type changed" true (o.Runtime.Object_store.tid = city);
      check_bool "kept slot" true
        (Value.equal (Runtime.get rt l ~attr:"longi") (Value.Float 8.4));
      check_bool "new slot defaulted" true
        (Value.equal (Runtime.get rt l ~attr:"noOfInhabitants") (Value.Int 0))
  | _ -> Alcotest.fail "expected object");
  (* the physical model followed the migration *)
  let db = Manager.database m in
  check_bool "old rep retired" true
    (Gom.Schema_base.phrep_of_type db ~tid:location = None);
  check_bool "new rep present" true
    (Gom.Schema_base.phrep_of_type db ~tid:city <> None);
  check_bool "model consistent" true
    (Datalog.Checker.is_consistent (Manager.theory m) db)

(* ------------------------------------------------------------------ *)
(* Masking helpers                                                      *)
(* ------------------------------------------------------------------ *)

let test_missing_behaviour () =
  let m, _ = car_manager () in
  Manager.begin_session m;
  Manager.run_commands m
    {|add schema V2;
      evolve schema CarSchema to V2;
      add type Person to V2;
      add attribute name : string to Person@V2;
      add attribute birthday : date to Person@V2;
      add operation greet : -> string to Person@V2;
      set code of greet of Person@V2 is begin return self.name; end;
      evolve type Person@CarSchema to Person@V2;|};
  let db = Manager.database m in
  let old_p = tid_in m ~schema:"CarSchema" "Person" in
  let new_p = tid_in m ~schema:"V2" "Person" in
  let attrs, ops = Runtime.Masking.missing_behaviour db ~masked:old_p ~target:new_p in
  Alcotest.(check (list string)) "missing attrs" [ "birthday"; "name" ]
    (List.sort compare attrs);
  Alcotest.(check (list string)) "missing ops" [ "greet" ] ops;
  Manager.rollback m

let suite =
  [
    ( "runtime.values",
      [
        Alcotest.test_case "numeric equality" `Quick test_value_equal_numeric;
        Alcotest.test_case "truthiness" `Quick test_value_truthiness;
        Alcotest.test_case "defaults" `Quick test_value_defaults;
      ] );
    ( "runtime.store",
      [
        Alcotest.test_case "snapshot/restore" `Quick test_store_snapshot_restore;
        Alcotest.test_case "type index" `Quick test_store_type_index;
      ] );
    ( "runtime.interp",
      [
        Alcotest.test_case "while loop" `Quick test_interp_while_loop;
        Alcotest.test_case "float arithmetic" `Quick test_interp_float_arithmetic;
        Alcotest.test_case "string concat" `Quick test_interp_string_concat;
        Alcotest.test_case "boolean logic" `Quick test_interp_boolean_logic;
        Alcotest.test_case "division by zero" `Quick test_interp_division_by_zero;
        Alcotest.test_case "wrong arity" `Quick test_interp_wrong_arity;
        Alcotest.test_case "unknown operation" `Quick test_interp_unknown_operation;
        Alcotest.test_case "schema variable" `Quick test_interp_global_variable;
        Alcotest.test_case "loop budget" `Quick test_interp_loop_budget;
      ] );
    ( "runtime.conversion",
      [
        Alcotest.test_case "add covers subtypes" `Quick
          test_conversion_add_covers_subtypes;
        Alcotest.test_case "drop" `Quick test_conversion_drop;
        Alcotest.test_case "migrate object" `Quick test_migrate_object;
      ] );
    ( "runtime.masking",
      [ Alcotest.test_case "missing behaviour" `Quick test_missing_behaviour ] );
  ]

let () = Alcotest.run "runtime" suite
