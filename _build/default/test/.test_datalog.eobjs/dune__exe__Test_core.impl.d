test/test_core.ml: Alcotest Analyzer Buffer Core Datalog Filename Gen Gom List Manager Option Persist QCheck QCheck_alcotest Runtime String Sys
