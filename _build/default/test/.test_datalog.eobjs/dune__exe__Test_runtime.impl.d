test/test_runtime.ml: Alcotest Analyzer Core Datalog Gom List Manager Option Runtime String
