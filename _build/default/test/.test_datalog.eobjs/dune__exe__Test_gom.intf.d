test/test_gom.mli:
