test/test_gom.ml: Alcotest Builtin Checker Database Datalog Example Explain Extensions Fashion Fmt Gom Ids List Model Option Preds Repair Schema_base String Subschema Theory Versioning
