test/test_evolution.ml: Alcotest Analyzer Baselines Core Datalog Evolution Gom List Manager Option Runtime String
