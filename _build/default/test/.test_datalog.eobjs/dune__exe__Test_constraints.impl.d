test/test_constraints.ml: Alcotest Builtin Checker Constraint_compile Database Datalog Example Fact Fashion Gom List Model Preds Repair Sorts String Subschema Theory Versioning
