(* Constraint coverage: for EVERY constraint of the full theory, one seeded
   inconsistency that makes exactly that constraint fire, plus a meta-test
   that this table covers the complete constraint database — so adding a
   constraint without a firing test fails the suite. *)

open Datalog
open Gom

let full_theory () =
  let t = Theory.create () in
  Model.install_core t;
  Versioning.install t;
  Fashion.install t;
  Subschema.install t;
  Sorts.install t;
  t

let missing_tid = "tid_404"
let missing_sid = "sid_404"
let missing_did = "did_404"
let missing_cid = "cid_404"
let missing_clid = "clid_404"

(* A second schema with one (empty-ish) type and proper version edges,
   used by the versioning/fashion seeds. *)
let second_schema =
  [
    Preds.schema_fact ~sid:"sid_2" ~name:"SecondSchema";
    Preds.type_fact ~tid:"tid_10" ~name:"Person" ~sid:"sid_2";
    Preds.subtyprel_fact ~sub:"tid_10" ~super:Builtin.any_tid;
  ]

(* (constraint name, facts to add, facts to remove) *)
let coverage : (string * Fact.t list * Fact.t list) list =
  [
    (* --- keys and uniqueness (section 3.3) --- *)
    "key$Schema", [ Preds.schema_fact ~sid:Example.sid_car ~name:"Other" ], [];
    ( "key$Type",
      [ Preds.type_fact ~tid:Example.tid_person ~name:"P2" ~sid:Example.sid_car ],
      [] );
    ( "key$Attr",
      [ Preds.attr_fact ~tid:Example.tid_person ~name:"age" ~domain:"tid_float" ],
      [] );
    ( "key$Decl",
      [
        Preds.decl_fact ~did:Example.did_distance_location
          ~receiver:Example.tid_location ~name:"other" ~result:"tid_float";
      ],
      [] );
    ( "key$ArgDecl",
      [ Preds.argdecl_fact ~did:Example.did_distance_location ~pos:1
          ~tid:Example.tid_city ],
      [] );
    ( "key$Code",
      [ Preds.code_fact ~cid:Example.cid_distance_location ~text:"other"
          ~did:Example.did_distance_location ],
      [] );
    ( "uniq$CodePerDecl",
      [ Preds.code_fact ~cid:"cid_99" ~text:"x"
          ~did:Example.did_distance_location ],
      [] );
    "uniq$SchemaName", [ Preds.schema_fact ~sid:"sid_99" ~name:"CarSchema" ], [];
    ( "uniq$TypeNameInSchema",
      [
        Preds.type_fact ~tid:"tid_99" ~name:"Person" ~sid:Example.sid_car;
        Preds.subtyprel_fact ~sub:"tid_99" ~super:Builtin.any_tid;
      ],
      [] );
    ( "uniq$DeclNameInType",
      [
        Preds.decl_fact ~did:"did_99" ~receiver:Example.tid_location
          ~name:"distance" ~result:"tid_float";
      ],
      [] );
    (* --- referential integrity (section 3.3) --- *)
    ( "ri$Type_Schema",
      [
        Preds.type_fact ~tid:"tid_99" ~name:"Orphan" ~sid:missing_sid;
        Preds.subtyprel_fact ~sub:"tid_99" ~super:Builtin.any_tid;
      ],
      [] );
    "ri$Attr_Type", [ Preds.attr_fact ~tid:missing_tid ~name:"a" ~domain:"tid_int" ], [];
    ( "ri$Attr_Domain",
      [ Preds.attr_fact ~tid:Example.tid_car ~name:"ghost" ~domain:missing_tid ],
      [] );
    ( "ri$Decl_Receiver",
      [ Preds.decl_fact ~did:"did_99" ~receiver:missing_tid ~name:"f"
          ~result:"tid_int" ],
      [] );
    ( "ri$Decl_Result",
      [ Preds.decl_fact ~did:"did_99" ~receiver:Example.tid_person ~name:"f"
          ~result:missing_tid ],
      [] );
    "ri$ArgDecl_Decl", [ Preds.argdecl_fact ~did:missing_did ~pos:1 ~tid:"tid_int" ], [];
    ( "ri$ArgDecl_Type",
      [ Preds.argdecl_fact ~did:Example.did_distance_location ~pos:2
          ~tid:missing_tid ],
      [] );
    "ri$Code_Decl", [ Preds.code_fact ~cid:"cid_99" ~text:"t" ~did:missing_did ], [];
    ( "ri$SubTypRel_Sub",
      [ Preds.subtyprel_fact ~sub:missing_tid ~super:Example.tid_person ],
      [] );
    ( "ri$SubTypRel_Super",
      [ Preds.subtyprel_fact ~sub:Example.tid_person ~super:missing_tid ],
      [] );
    ( "ri$DeclRefinement_Refining",
      [ Preds.declrefinement_fact ~refining:missing_did
          ~refined:Example.did_distance_location ],
      [] );
    ( "ri$DeclRefinement_Refined",
      [ Preds.declrefinement_fact ~refining:Example.did_distance_city
          ~refined:missing_did ],
      [] );
    ( "ri$CodeReqDecl_Code",
      [ Preds.codereqdecl_fact ~cid:missing_cid
          ~did:Example.did_distance_location ],
      [] );
    ( "ri$CodeReqDecl_Decl",
      [ Preds.codereqdecl_fact ~cid:Example.cid_changelocation ~did:missing_did ],
      [] );
    ( "ri$CodeReqAttr_Code",
      [ Preds.codereqattr_fact ~cid:missing_cid ~tid:Example.tid_person
          ~attr_name:"name" ],
      [] );
    ( "ri$CodeReqAttr_Attr",
      [ Preds.codereqattr_fact ~cid:Example.cid_changelocation
          ~tid:Example.tid_car ~attr_name:"fuelType" ],
      [] );
    (* --- existence, acyclicity, inheritance (section 3.3) --- *)
    ( "exist$DeclHasCode",
      [ Preds.decl_fact ~did:"did_99" ~receiver:Example.tid_car ~name:"honk"
          ~result:"tid_void" ],
      [] );
    ( "acyclic$SubTypRel",
      [ Preds.subtyprel_fact ~sub:Example.tid_location ~super:Example.tid_city ],
      [] );
    ( "root$ANY",
      [ Preds.type_fact ~tid:"tid_99" ~name:"Orphan" ~sid:Example.sid_car ],
      [] );
    ( "acyclic$DeclRefinement",
      [ Preds.declrefinement_fact ~refining:Example.did_distance_location
          ~refined:Example.did_distance_city ],
      [] );
    ( "mi$AttrCodomain",
      [ Preds.attr_fact ~tid:Example.tid_location ~name:"name" ~domain:"tid_int" ],
      [] );
    ( "mi$DeclConflict",
      [
        Preds.type_fact ~tid:"tid_99" ~name:"Amphibian" ~sid:Example.sid_car;
        Preds.subtyprel_fact ~sub:"tid_99" ~super:Example.tid_location;
        Preds.subtyprel_fact ~sub:"tid_99" ~super:Example.tid_car;
        Preds.decl_fact ~did:"did_99" ~receiver:Example.tid_car ~name:"distance"
          ~result:"tid_float";
        Preds.code_fact ~cid:"cid_99" ~text:"!!" ~did:"did_99";
      ],
      [] );
    ( "refine$Contravariance",
      [ Preds.argdecl_fact ~did:Example.did_distance_city ~pos:2 ~tid:"tid_int" ],
      [] );
    (* --- the object part (section 3.4) --- *)
    "ri$PhRep_Type", [ Preds.phrep_fact ~clid:"clid_99" ~tid:missing_tid ], [];
    ( "ri$Slot_PhRep",
      [ Preds.slot_fact ~clid:missing_clid ~attr_name:"x" ~value_clid:Example.clid_person ],
      [] );
    ( "ri$Slot_Value",
      [ Preds.slot_fact ~clid:Example.clid_person ~attr_name:"x"
          ~value_clid:missing_clid ],
      [] );
    ( "uniq$PhRepPerType",
      [ Preds.phrep_fact ~clid:"clid_99" ~tid:Example.tid_car ],
      [] );
    ( "key$PhRep",
      [ Preds.phrep_fact ~clid:Example.clid_person ~tid:Example.tid_location ],
      [] );
    ( "key$Slot",
      [ Preds.slot_fact ~clid:Example.clid_person ~attr_name:"name"
          ~value_clid:"clid_int" ],
      [] );
    ( "star$SlotForEveryAttr",
      [ Preds.attr_fact ~tid:Example.tid_car ~name:"fuelType"
          ~domain:"tid_string" ],
      [] );
    (* --- versioning (section 4.1) --- *)
    ( "ri$evolves_to_S_From",
      [ Preds.evolves_to_s_fact ~from_sid:missing_sid ~to_sid:Example.sid_car ],
      [] );
    ( "ri$evolves_to_S_To",
      [ Preds.evolves_to_s_fact ~from_sid:Example.sid_car ~to_sid:missing_sid ],
      [] );
    ( "ri$evolves_to_T_From",
      [ Preds.evolves_to_t_fact ~from_tid:missing_tid ~to_tid:Example.tid_person ],
      [] );
    ( "ri$evolves_to_T_To",
      [ Preds.evolves_to_t_fact ~from_tid:Example.tid_person ~to_tid:missing_tid ],
      [] );
    ( "acyclic$evolves_to_S",
      second_schema
      @ [
          Preds.evolves_to_s_fact ~from_sid:Example.sid_car ~to_sid:"sid_2";
          Preds.evolves_to_s_fact ~from_sid:"sid_2" ~to_sid:Example.sid_car;
        ],
      [] );
    ( "acyclic$evolves_to_T",
      second_schema
      @ [
          Preds.evolves_to_s_fact ~from_sid:Example.sid_car ~to_sid:"sid_2";
          Preds.evolves_to_s_fact ~from_sid:"sid_2" ~to_sid:Example.sid_car;
          Preds.evolves_to_t_fact ~from_tid:Example.tid_person ~to_tid:"tid_10";
          Preds.evolves_to_t_fact ~from_tid:"tid_10" ~to_tid:Example.tid_person;
        ],
      [] );
    ( "digest$TypeEvolution",
      second_schema
      @ [ Preds.evolves_to_t_fact ~from_tid:Example.tid_person ~to_tid:"tid_10" ],
      [] );
    (* --- fashion (section 4.1) --- *)
    ( "ri$FashionType_Masked",
      [ Preds.fashiontype_fact ~masked:missing_tid ~target:Example.tid_person ],
      [] );
    ( "ri$FashionType_Target",
      [ Preds.fashiontype_fact ~masked:Example.tid_person ~target:missing_tid ],
      [] );
    ( "ri$FashionDecl_Decl",
      [ Preds.fashiondecl_fact ~did:missing_did ~tid:Example.tid_person
          ~cid:"cid_90" ],
      [] );
    ( "ri$FashionDecl_Type",
      [ Preds.fashiondecl_fact ~did:Example.did_distance_location
          ~tid:missing_tid ~cid:"cid_90" ],
      [] );
    ( "key$FashionDecl",
      [
        Preds.fashiondecl_fact ~did:Example.did_distance_location
          ~tid:Example.tid_person ~cid:"cid_90";
        Preds.fashiondecl_fact ~did:Example.did_distance_location
          ~tid:Example.tid_person ~cid:"cid_91";
      ],
      [] );
    ( "key$FashionAttr",
      [
        Preds.fashionattr_fact ~owner_tid:Example.tid_person ~attr_name:"age"
          ~masked_tid:"tid_10" ~read_cid:"cid_90" ~write_cid:"cid_91";
        Preds.fashionattr_fact ~owner_tid:Example.tid_person ~attr_name:"age"
          ~masked_tid:"tid_10" ~read_cid:"cid_92" ~write_cid:"cid_93";
      ],
      [] );
    ( "fashion$OnlyBetweenVersions",
      second_schema
      @ [ Preds.fashiontype_fact ~masked:Example.tid_person ~target:"tid_10" ],
      [] );
    ( "fashion$DeclComplete",
      second_schema
      @ [
          Preds.evolves_to_s_fact ~from_sid:Example.sid_car ~to_sid:"sid_2";
          Preds.evolves_to_t_fact ~from_tid:Example.tid_location ~to_tid:"tid_10";
          Preds.fashiontype_fact ~masked:"tid_10" ~target:Example.tid_location;
        ],
      [] );
    ( "fashion$AttrComplete",
      second_schema
      @ [
          Preds.evolves_to_s_fact ~from_sid:Example.sid_car ~to_sid:"sid_2";
          Preds.evolves_to_t_fact ~from_tid:Example.tid_person ~to_tid:"tid_10";
          Preds.fashiontype_fact ~masked:"tid_10" ~target:Example.tid_person;
        ],
      [] );
    (* --- subschemas (appendix A) --- *)
    ( "ri$SubSchemaRel_Child",
      [ Preds.subschemarel_fact ~child:missing_sid ~parent:Example.sid_car ],
      [] );
    ( "ri$SubSchemaRel_Parent",
      [ Preds.subschemarel_fact ~child:Example.sid_car ~parent:missing_sid ],
      [] );
    ( "ri$Imports_Importer",
      [ Preds.imports_fact ~importer:missing_sid ~imported:Example.sid_car ],
      [] );
    ( "ri$Imports_Imported",
      [ Preds.imports_fact ~importer:Example.sid_car ~imported:missing_sid ],
      [] );
    ( "ri$PublicComp_Schema",
      [ Preds.public_comp_fact ~sid:missing_sid ~kind:"type" ~name:"X" ],
      [] );
    ( "ri$SchemaVar_Schema",
      [ Preds.schemavar_fact ~sid:missing_sid ~name:"v" ~tid:Example.tid_person ],
      [] );
    ( "ri$SchemaVar_Type",
      [ Preds.schemavar_fact ~sid:Example.sid_car ~name:"v" ~tid:missing_tid ],
      [] );
    ( "ri$Renamed_Schema",
      [
        Preds.renamed_fact ~sid:missing_sid ~kind:"type" ~new_name:"N"
          ~source_sid:Example.sid_car ~old_name:"O";
      ],
      [] );
    ( "ri$Renamed_Source",
      [
        Preds.renamed_fact ~sid:Example.sid_car ~kind:"type" ~new_name:"N"
          ~source_sid:missing_sid ~old_name:"O";
      ],
      [] );
    ( "key$Renamed",
      second_schema
      @ [
          Preds.renamed_fact ~sid:Example.sid_car ~kind:"type" ~new_name:"N"
            ~source_sid:"sid_2" ~old_name:"O1";
          Preds.renamed_fact ~sid:Example.sid_car ~kind:"type" ~new_name:"N"
            ~source_sid:"sid_2" ~old_name:"O2";
        ],
      [] );
    ( "acyclic$SubSchemaRel",
      second_schema
      @ [
          Preds.subschemarel_fact ~child:"sid_2" ~parent:Example.sid_car;
          Preds.subschemarel_fact ~child:Example.sid_car ~parent:"sid_2";
        ],
      [] );
    ( "tree$SingleParent",
      second_schema
      @ [
          Preds.schema_fact ~sid:"sid_3" ~name:"ThirdSchema";
          Preds.subschemarel_fact ~child:"sid_2" ~parent:Example.sid_car;
          Preds.subschemarel_fact ~child:"sid_2" ~parent:"sid_3";
        ],
      [] );
    "irrefl$Imports", [ Preds.imports_fact ~importer:Example.sid_car ~imported:Example.sid_car ], [];
    ( "key$SchemaVar",
      [
        Preds.schemavar_fact ~sid:Example.sid_car ~name:"v" ~tid:Example.tid_person;
        Preds.schemavar_fact ~sid:Example.sid_car ~name:"v" ~tid:Example.tid_city;
      ],
      [] );
    (* --- sorts --- *)
    "ri$EnumVal_Type", [ Sorts.enumval_fact ~tid:missing_tid ~value:"x" ], [];
  ]

let violated_names t db =
  Checker.check t db
  |> List.map (fun v -> v.Checker.constraint_name)
  |> List.sort_uniq String.compare

let test_constraint_fires (name, additions, deletions) () =
  let t = full_theory () in
  let db = Example.database () in
  List.iter (fun f -> ignore (Database.remove db f)) deletions;
  List.iter (fun f -> ignore (Database.add db f)) additions;
  let names = violated_names t db in
  if not (List.mem name names) then
    Alcotest.failf "expected %s among violations: %s" name
      (String.concat ", " names)

(* Every constraint of the full theory must appear in the coverage table. *)
let test_coverage_is_complete () =
  let t = full_theory () in
  let all =
    Theory.constraints t
    |> List.map (fun c -> c.Constraint_compile.name)
    |> List.sort_uniq String.compare
  in
  let covered = List.map (fun (n, _, _) -> n) coverage |> List.sort_uniq compare in
  let missing = List.filter (fun n -> not (List.mem n covered)) all in
  if missing <> [] then
    Alcotest.failf "constraints without a firing test: %s"
      (String.concat ", " missing);
  let stale = List.filter (fun n -> not (List.mem n all)) covered in
  if stale <> [] then
    Alcotest.failf "coverage entries for unknown constraints: %s"
      (String.concat ", " stale)

(* Repairs generated for each seeded violation must, when applied (ground
   deletions and additions only), remove at least that violation instance. *)
let test_repairs_resolve_each_seed () =
  List.iter
    (fun (name, additions, deletions) ->
      let t = full_theory () in
      let db = Example.database () in
      List.iter (fun f -> ignore (Database.remove db f)) deletions;
      List.iter (fun f -> ignore (Database.add db f)) additions;
      let materialized = Checker.materialize t db in
      match
        Checker.violations_of t materialized
        |> List.find_opt (fun v -> v.Checker.constraint_name = name)
      with
      | None -> Alcotest.failf "seed for %s did not fire" name
      | Some v -> (
          match Repair.generate t materialized v with
          | [] -> Alcotest.failf "no repairs generated for %s" name
          | repair :: _ ->
              let db' = Database.copy db in
              List.iter
                (fun (a : Repair.action) ->
                  match a with
                  | Repair.Del f -> ignore (Database.remove db' f)
                  | Repair.Add f ->
                      if Fact.is_ground f then ignore (Database.add db' f))
                repair;
              (* the specific witness instance must be gone (other instances
                 or other constraints may legitimately remain) *)
              let still =
                Checker.check t db'
                |> List.exists (fun v' ->
                       v'.Checker.constraint_name = name
                       && v'.Checker.witness = v.Checker.witness)
              in
              (* repairs with non-ground additions cannot be applied here *)
              let has_fresh =
                List.exists
                  (fun (a : Repair.action) ->
                    match a with
                    | Repair.Add f -> not (Fact.is_ground f)
                    | Repair.Del _ -> false)
                  repair
              in
              if still && not has_fresh then
                Alcotest.failf "first repair for %s did not remove the witness"
                  name))
    coverage

let suite =
  [
    ( "constraints.coverage",
      List.map
        (fun ((name, _, _) as entry) ->
          Alcotest.test_case name `Quick (test_constraint_fires entry))
        coverage );
    ( "constraints.meta",
      [
        Alcotest.test_case "table covers every constraint" `Quick
          test_coverage_is_complete;
        Alcotest.test_case "first repair removes each witness" `Quick
          test_repairs_resolve_each_seed;
      ] );
  ]

let () = Alcotest.run "constraints" suite
